"""Opcode table for the MIPS-R2000-like ISA.

Every opcode carries the static properties the compiler and the hardware
models need:

* the functional-unit class it executes on (Section 4.3.1 distributes the
  units between the two sides of the 2-issue machine),
* its result latency in cycles (loads have a single delay slot, exactly as on
  the R2000; multiply/divide are long-latency),
* whether it *can except* — the property that makes a speculative upward code
  motion **unsafe** (Section 2.1), and
* its control-flow role (conditional branch, jump, call, ...).

Arithmetic is 32-bit two's-complement wrapping (MIPS ``addu`` semantics);
the trapping operations are the memory accesses (addressing faults) and
integer divide (divide-by-zero).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FU(enum.Enum):
    """Functional-unit classes of the superscalar machine."""

    ALU = "alu"          # integer ALU — one on each side of the machine
    SHIFT = "shift"      # shifter — side A only
    BRANCH = "branch"    # branch unit — side A only
    MULDIV = "muldiv"    # integer multiply/divide — side A only
    MEM = "mem"          # memory port — side B only
    NONE = "none"        # pseudo-ops that occupy no unit (NOP)


class Format(enum.Enum):
    """Operand formats, used by the printer/parser and the simulators."""

    RRR = "rrr"        # dst, src1, src2
    RRI = "rri"        # dst, src1, imm
    RI = "ri"          # dst, imm
    RR = "rr"          # dst, src
    LOAD = "load"      # dst, offset(base)
    STORE = "store"    # src, offset(base)
    BRANCH2 = "br2"    # src1, src2, target
    BRANCH1 = "br1"    # src1, target
    JUMP = "jump"      # target
    JREG = "jreg"      # src (jr) — jalr also writes ra
    SRC1 = "src1"      # src (print)
    NONE = "none"      # nop, halt


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    mnemonic: str
    fu: FU
    fmt: Format
    latency: int = 1
    can_except: bool = False
    is_cond_branch: bool = False
    is_jump: bool = False
    is_call: bool = False
    is_indirect: bool = False
    is_load: bool = False
    is_store: bool = False
    writes_dst: bool = False
    commutative: bool = False

    @property
    def is_branch(self) -> bool:
        """Any control-transfer instruction (conditional or not)."""
        return self.is_cond_branch or self.is_jump

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store


class Opcode(enum.Enum):
    """All opcodes of the ISA.  ``info`` holds the static properties."""

    # --- ALU -------------------------------------------------------------
    ADD = OpInfo("add", FU.ALU, Format.RRR, writes_dst=True, commutative=True)
    ADDI = OpInfo("addi", FU.ALU, Format.RRI, writes_dst=True)
    SUB = OpInfo("sub", FU.ALU, Format.RRR, writes_dst=True)
    AND = OpInfo("and", FU.ALU, Format.RRR, writes_dst=True, commutative=True)
    ANDI = OpInfo("andi", FU.ALU, Format.RRI, writes_dst=True)
    OR = OpInfo("or", FU.ALU, Format.RRR, writes_dst=True, commutative=True)
    ORI = OpInfo("ori", FU.ALU, Format.RRI, writes_dst=True)
    XOR = OpInfo("xor", FU.ALU, Format.RRR, writes_dst=True, commutative=True)
    XORI = OpInfo("xori", FU.ALU, Format.RRI, writes_dst=True)
    NOR = OpInfo("nor", FU.ALU, Format.RRR, writes_dst=True, commutative=True)
    SLT = OpInfo("slt", FU.ALU, Format.RRR, writes_dst=True)
    SLTI = OpInfo("slti", FU.ALU, Format.RRI, writes_dst=True)
    SLTU = OpInfo("sltu", FU.ALU, Format.RRR, writes_dst=True)
    SLTIU = OpInfo("sltiu", FU.ALU, Format.RRI, writes_dst=True)
    LUI = OpInfo("lui", FU.ALU, Format.RI, writes_dst=True)
    LI = OpInfo("li", FU.ALU, Format.RI, writes_dst=True)
    MOVE = OpInfo("move", FU.ALU, Format.RR, writes_dst=True)

    # --- Shifter (side A only) -------------------------------------------
    SLL = OpInfo("sll", FU.SHIFT, Format.RRI, writes_dst=True)
    SRL = OpInfo("srl", FU.SHIFT, Format.RRI, writes_dst=True)
    SRA = OpInfo("sra", FU.SHIFT, Format.RRI, writes_dst=True)
    SLLV = OpInfo("sllv", FU.SHIFT, Format.RRR, writes_dst=True)
    SRLV = OpInfo("srlv", FU.SHIFT, Format.RRR, writes_dst=True)
    SRAV = OpInfo("srav", FU.SHIFT, Format.RRR, writes_dst=True)

    # --- Multiply / divide (side A only, long latency) ---------------------
    MUL = OpInfo("mul", FU.MULDIV, Format.RRR, latency=4, writes_dst=True,
                 commutative=True)
    DIV = OpInfo("div", FU.MULDIV, Format.RRR, latency=12, can_except=True,
                 writes_dst=True)
    REM = OpInfo("rem", FU.MULDIV, Format.RRR, latency=12, can_except=True,
                 writes_dst=True)

    # --- Memory (side B only; one delay slot, may fault) -------------------
    LW = OpInfo("lw", FU.MEM, Format.LOAD, latency=2, can_except=True,
                is_load=True, writes_dst=True)
    LB = OpInfo("lb", FU.MEM, Format.LOAD, latency=2, can_except=True,
                is_load=True, writes_dst=True)
    LBU = OpInfo("lbu", FU.MEM, Format.LOAD, latency=2, can_except=True,
                 is_load=True, writes_dst=True)
    SW = OpInfo("sw", FU.MEM, Format.STORE, can_except=True, is_store=True)
    SB = OpInfo("sb", FU.MEM, Format.STORE, can_except=True, is_store=True)

    # --- Control transfer (side A; one delay slot) -------------------------
    BEQ = OpInfo("beq", FU.BRANCH, Format.BRANCH2, is_cond_branch=True)
    BNE = OpInfo("bne", FU.BRANCH, Format.BRANCH2, is_cond_branch=True)
    BLEZ = OpInfo("blez", FU.BRANCH, Format.BRANCH1, is_cond_branch=True)
    BGTZ = OpInfo("bgtz", FU.BRANCH, Format.BRANCH1, is_cond_branch=True)
    BLTZ = OpInfo("bltz", FU.BRANCH, Format.BRANCH1, is_cond_branch=True)
    BGEZ = OpInfo("bgez", FU.BRANCH, Format.BRANCH1, is_cond_branch=True)
    J = OpInfo("j", FU.BRANCH, Format.JUMP, is_jump=True)
    JAL = OpInfo("jal", FU.BRANCH, Format.JUMP, is_jump=True, is_call=True,
                 writes_dst=True)
    JR = OpInfo("jr", FU.BRANCH, Format.JREG, is_jump=True, is_indirect=True)
    JALR = OpInfo("jalr", FU.BRANCH, Format.JREG, is_jump=True, is_call=True,
                  is_indirect=True, writes_dst=True)

    # --- Pseudo / system ---------------------------------------------------
    NOP = OpInfo("nop", FU.NONE, Format.NONE)
    HALT = OpInfo("halt", FU.BRANCH, Format.NONE)
    PRINT = OpInfo("print", FU.ALU, Format.SRC1)

    @property
    def info(self) -> OpInfo:
        return self.value

    # Convenience pass-throughs so call sites read ``op.is_load`` etc.
    @property
    def fu(self) -> FU:
        return self.value.fu

    @property
    def fmt(self) -> Format:
        return self.value.fmt

    @property
    def latency(self) -> int:
        return self.value.latency

    @property
    def can_except(self) -> bool:
        return self.value.can_except

    @property
    def is_cond_branch(self) -> bool:
        return self.value.is_cond_branch

    @property
    def is_jump(self) -> bool:
        return self.value.is_jump

    @property
    def is_branch(self) -> bool:
        return self.value.is_branch

    @property
    def is_call(self) -> bool:
        return self.value.is_call

    @property
    def is_indirect(self) -> bool:
        return self.value.is_indirect

    @property
    def is_load(self) -> bool:
        return self.value.is_load

    @property
    def is_store(self) -> bool:
        return self.value.is_store

    @property
    def is_mem(self) -> bool:
        return self.value.is_mem

    @property
    def writes_dst(self) -> bool:
        return self.value.writes_dst

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic


#: Mnemonic -> Opcode lookup for the assembly parser.
BY_MNEMONIC: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}
