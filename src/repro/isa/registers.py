"""Register model for the MIPS-R2000-like ISA.

The architecture has 32 sequential (architectural) integer registers with the
conventional MIPS names.  The compiler additionally works with an unbounded
supply of *virtual* registers before register allocation; the paper's
"infinite register model" (Section 4.3.1) is realised by giving every virtual
register its own physical index above 31 and sizing the simulated register
file accordingly.

Registers are interned: ``Reg(5) is Reg(5)``, which makes them cheap to hash
and compare in the schedulers and dataflow analyses.
"""

from __future__ import annotations

NUM_ARCH_REGS = 32

_MIPS_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_INDEX = {name: i for i, name in enumerate(_MIPS_NAMES)}


class Reg:
    """An integer register, identified by its index.

    Indices 0..31 are the architectural registers; index 0 is hard-wired to
    zero.  Indices >= :data:`VIRTUAL_BASE` are compiler temporaries produced
    by the front end and removed by register allocation (or kept, under the
    infinite register model).
    """

    __slots__ = ("index",)

    VIRTUAL_BASE = 1000

    _cache: dict[int, "Reg"] = {}

    def __new__(cls, index: int) -> "Reg":
        cached = cls._cache.get(index)
        if cached is not None:
            return cached
        if index < 0:
            raise ValueError(f"register index must be non-negative: {index}")
        reg = super().__new__(cls)
        reg.index = index
        cls._cache[index] = reg
        return reg

    @classmethod
    def named(cls, name: str) -> "Reg":
        """Look up an architectural register by its MIPS name (e.g. ``"t0"``)."""
        if name in _NAME_TO_INDEX:
            return cls(_NAME_TO_INDEX[name])
        if name.startswith("r") and name[1:].isdigit():
            return cls(int(name[1:]))
        if name.startswith("v") and name[1:].isdigit():
            return cls(cls.VIRTUAL_BASE + int(name[1:]))
        raise KeyError(f"unknown register name: {name!r}")

    @classmethod
    def virtual(cls, n: int) -> "Reg":
        """The *n*-th virtual (pre-allocation) register."""
        return cls(cls.VIRTUAL_BASE + n)

    @property
    def is_virtual(self) -> bool:
        return self.index >= self.VIRTUAL_BASE

    @property
    def is_zero(self) -> bool:
        return self.index == 0

    @property
    def name(self) -> str:
        if self.index < NUM_ARCH_REGS:
            return _MIPS_NAMES[self.index]
        if self.is_virtual:
            return f"v{self.index - self.VIRTUAL_BASE}"
        return f"r{self.index}"

    def __repr__(self) -> str:
        return f"${self.name}"

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Reg) and other.index == self.index)

    def __lt__(self, other: "Reg") -> bool:
        return self.index < other.index

    def __reduce__(self):
        # Re-enter __new__ on unpickle so interning survives a round trip
        # (the default object reconstructor would bypass the cache and
        # break ``Reg(5) is Reg(5)``).
        return (Reg, (self.index,))


# Conventional register aliases, exported for builder/codegen convenience.
ZERO = Reg.named("zero")
AT = Reg.named("at")
V0, V1 = Reg.named("v0"), Reg.named("v1")
A0, A1, A2, A3 = (Reg.named(n) for n in ("a0", "a1", "a2", "a3"))
T_REGS = tuple(Reg.named(f"t{i}") for i in range(10))
S_REGS = tuple(Reg.named(f"s{i}") for i in range(8))
GP = Reg.named("gp")
SP = Reg.named("sp")
FP = Reg.named("fp")
RA = Reg.named("ra")

#: Registers the round-robin allocator may hand out for program values.
#: ``at`` is reserved for the assembler/scheduler, ``k0``/``k1`` for the
#: exception machinery, and ``gp``/``sp``/``fp``/``ra`` have fixed roles.
ALLOCATABLE = tuple(
    Reg.named(n)
    for n in (
        "v0", "v1", "a0", "a1", "a2", "a3",
        "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
        "t8", "t9",
    )
)
