"""Instructions, including the boosting annotation.

A boosted instruction carries its control-dependence information in the
instruction encoding (Section 2.3).  The *general* form labels each dependent
branch with its predicted direction (``.BRL`` = next branch RIGHT, the one
after LEFT); the *trace-based* simplification the paper (and our schedulers)
actually use encodes only a count ``.Bn``: the instruction is control
dependent on the next *n* conditional branches, each going its predicted
direction.  Both forms are modelled here; :class:`BoostLabel` is the general
form and ``Instruction.boost`` is the trace-based level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.isa.opcodes import Format, Opcode
from repro.isa.registers import RA, Reg

_uid_counter = itertools.count(1)


def ensure_uid_floor(floor: int) -> None:
    """Advance the uid counter to at least ``floor``.

    Programs deserialized from the compile cache carry uids assigned by the
    process that built them; a fresh process's counter restarts near 1, and a
    later :meth:`Instruction.copy` could collide with a cached uid and corrupt
    fault plans or recovery indexing.  Callers that load cached programs must
    bump the counter past every loaded uid.
    """
    global _uid_counter
    current = next(_uid_counter)
    _uid_counter = itertools.count(max(current, floor))


class Direction:
    """Predicted directions for the general boosting label."""

    LEFT = "L"       # branch falls through
    RIGHT = "R"      # branch taken
    DONT_CARE = "X"  # instruction independent of this branch


@dataclass(frozen=True)
class BoostLabel:
    """General (per-path) boosting label, e.g. ``.BRR`` in Figure 2.

    ``dirs`` holds one direction letter per dependent branch, innermost
    (nearest) branch first.  The trace-based simplification corresponds to a
    label of all-predicted directions, which is why it can be collapsed to a
    plain count (:meth:`level`).
    """

    dirs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for d in self.dirs:
            if d not in (Direction.LEFT, Direction.RIGHT, Direction.DONT_CARE):
                raise ValueError(f"bad boost direction {d!r}")

    @property
    def level(self) -> int:
        """Number of conditional branches this label depends on."""
        return sum(1 for d in self.dirs if d != Direction.DONT_CARE)

    @property
    def suffix(self) -> str:
        return ".B" + "".join(self.dirs) if self.dirs else ""

    @classmethod
    def parse(cls, text: str) -> "BoostLabel":
        """Parse a ``.BRR``-style suffix (without the leading dot)."""
        if not text.startswith("B"):
            raise ValueError(f"bad boost label {text!r}")
        return cls(tuple(text[1:]))


@dataclass
class Instruction:
    """One machine instruction.

    Operand conventions by format:

    * ``RRR``: ``dst``, ``srcs=(a, b)``
    * ``RRI``: ``dst``, ``srcs=(a,)``, ``imm``
    * ``RI``/``LI``: ``dst``, ``imm``
    * ``LOAD``: ``dst``, ``srcs=(base,)``, ``imm`` = offset
    * ``STORE``: ``srcs=(value, base)``, ``imm`` = offset
    * branches: ``srcs`` = compared registers, ``target`` = label
    * ``JAL``: ``target``, implicitly writes ``$ra``
    * ``JR``/``JALR``: ``srcs=(addr,)``

    ``boost`` is the trace-based boosting level (0 = sequential).
    ``predict_taken`` is the static prediction encoded on conditional
    branches by the profile-driven compiler.
    """

    op: Opcode
    dst: Optional[Reg] = None
    srcs: tuple[Reg, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None
    boost: int = 0
    predict_taken: Optional[bool] = None
    uid: int = field(default_factory=lambda: next(_uid_counter))
    #: uid of the instruction this one was duplicated/boosted from, if any.
    origin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op.writes_dst and self.dst is None and not self.op.is_call:
            raise ValueError(f"{self.op.mnemonic} requires a destination")
        if self.op is Opcode.JAL or self.op is Opcode.JALR:
            if self.dst is None:
                self.dst = RA
        if self.boost < 0:
            raise ValueError("boost level must be non-negative")

    # ------------------------------------------------------------------ defs
    def defs(self) -> tuple[Reg, ...]:
        """Registers written by this instruction (empty for stores/branches)."""
        if self.dst is not None and self.op.writes_dst and not self.dst.is_zero:
            return (self.dst,)
        return ()

    def uses(self) -> tuple[Reg, ...]:
        """Registers read by this instruction."""
        return tuple(r for r in self.srcs if not r.is_zero)

    # -------------------------------------------------------------- predicates
    @property
    def is_boosted(self) -> bool:
        return self.boost > 0

    @property
    def is_terminator(self) -> bool:
        return self.op.is_branch or self.op is Opcode.HALT

    @property
    def side_effect_free(self) -> bool:
        """True if squashing this instruction only discards its register result."""
        return (not self.op.is_store and not self.op.is_branch
                and self.op not in (Opcode.PRINT, Opcode.HALT))

    def reads_memory(self) -> bool:
        return self.op.is_load

    def writes_memory(self) -> bool:
        return self.op.is_store

    # ------------------------------------------------------------------ misc
    def copy(self, **changes) -> "Instruction":
        """A fresh instruction (new uid) with ``changes`` applied.

        The copy records the original instruction's uid in ``origin`` so the
        recovery-code generator can relate duplicates to their source.
        """
        changes.setdefault("uid", next(_uid_counter))
        changes.setdefault("origin", self.origin or self.uid)
        return replace(self, **changes)

    def with_boost(self, level: int) -> "Instruction":
        """The same instruction boosted to ``level`` (same uid)."""
        self.boost = level
        return self

    # ---------------------------------------------------------------- display
    def _dst_text(self) -> str:
        suffix = f".B{self.boost}" if self.boost else ""
        return f"{self.dst!r}{suffix}"

    def __str__(self) -> str:  # noqa: C901 - straightforward format dispatch
        op, fmt = self.op, self.op.fmt
        suffix = f".B{self.boost}" if self.boost else ""
        m = op.mnemonic + suffix
        if fmt is Format.RRR:
            return f"{m} {self.dst!r}, {self.srcs[0]!r}, {self.srcs[1]!r}"
        if fmt is Format.RRI:
            return f"{m} {self.dst!r}, {self.srcs[0]!r}, {self.imm}"
        if fmt is Format.RI:
            return f"{m} {self.dst!r}, {self.imm}"
        if fmt is Format.RR:
            return f"{m} {self.dst!r}, {self.srcs[0]!r}"
        if fmt is Format.LOAD:
            return f"{m} {self.dst!r}, {self.imm}({self.srcs[0]!r})"
        if fmt is Format.STORE:
            return f"{m} {self.srcs[0]!r}, {self.imm}({self.srcs[1]!r})"
        if fmt is Format.BRANCH2:
            pred = _pred_text(self.predict_taken)
            return f"{m} {self.srcs[0]!r}, {self.srcs[1]!r}, {self.target}{pred}"
        if fmt is Format.BRANCH1:
            pred = _pred_text(self.predict_taken)
            return f"{m} {self.srcs[0]!r}, {self.target}{pred}"
        if fmt is Format.JUMP:
            return f"{m} {self.target}"
        if fmt is Format.JREG:
            return f"{m} {self.srcs[0]!r}"
        if fmt is Format.SRC1:
            return f"{m} {self.srcs[0]!r}"
        return m

    __repr__ = __str__


def _pred_text(predict_taken: Optional[bool]) -> str:
    if predict_taken is None:
        return ""
    return " <T>" if predict_taken else " <NT>"


def iter_regs(instrs) -> Iterator[Reg]:
    """All registers mentioned by an iterable of instructions."""
    for instr in instrs:
        yield from instr.defs()
        yield from instr.uses()
