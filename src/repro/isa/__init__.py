"""ISA definition: registers, opcodes, and instructions."""

from repro.isa.instruction import BoostLabel, Direction, Instruction, iter_regs
from repro.isa.opcodes import BY_MNEMONIC, FU, Format, OpInfo, Opcode
from repro.isa.registers import (
    A0, A1, A2, A3, ALLOCATABLE, AT, FP, GP, NUM_ARCH_REGS, RA, S_REGS, SP,
    T_REGS, V0, V1, ZERO, Reg,
)

__all__ = [
    "A0", "A1", "A2", "A3", "ALLOCATABLE", "AT", "BY_MNEMONIC", "BoostLabel",
    "Direction", "FP", "FU", "Format", "GP", "Instruction", "NUM_ARCH_REGS",
    "OpInfo", "Opcode", "RA", "Reg", "S_REGS", "SP", "T_REGS", "V0", "V1",
    "ZERO", "iter_regs",
]
