"""Structured observability: scheduler/simulator counters and cycle traces.

The package is intentionally dependency-free (it imports nothing from the
rest of :mod:`repro`) so that any layer — compiler, simulators, harness —
can use it without import cycles.
"""

from repro.obs.stats import (
    SHARDS_SCHEMA,
    STATS_SCHEMA,
    NullStats,
    SchedStats,
    ShardStats,
    SimStats,
    record_schedule_occupancy,
)
from repro.obs.trace import TraceRecorder

__all__ = [
    "SHARDS_SCHEMA",
    "STATS_SCHEMA",
    "NullStats",
    "SchedStats",
    "ShardStats",
    "SimStats",
    "TraceRecorder",
    "record_schedule_occupancy",
]
