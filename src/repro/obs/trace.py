"""Opt-in ring-buffer cycle trace in Chrome trace-event format.

Events use the simulator cycle count as the microsecond timestamp, so one
trace microsecond equals one machine cycle.  The export is the JSON object
form understood by ``chrome://tracing`` and https://ui.perfetto.dev —
load the written file directly.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

TID_PIPELINE = 0
TID_SPECULATION = 1

_THREAD_NAMES = {
    TID_PIPELINE: "pipeline",
    TID_SPECULATION: "speculation",
}


class TraceRecorder:
    """A bounded ring buffer of Chrome trace events.

    When more than ``capacity`` events are recorded the oldest are
    overwritten; the number of dropped events is reported in the export's
    ``otherData`` section so a truncated trace is never mistaken for a
    complete one.
    """

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._buf: List[Optional[Dict]] = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._buf)

    def _push(self, event: Dict) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def complete(
        self,
        name: str,
        ts: int,
        dur: int,
        tid: int = TID_PIPELINE,
        args: Optional[Dict] = None,
    ) -> None:
        """Record a complete ("X") event spanning ``[ts, ts + dur)``."""
        event = {
            "name": name,
            "ph": "X",
            "ts": ts,
            "dur": max(dur, 1),
            "pid": 0,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._push(event)

    def instant(
        self,
        name: str,
        ts: int,
        tid: int = TID_SPECULATION,
        args: Optional[Dict] = None,
    ) -> None:
        """Record an instant ("i") event at ``ts``."""
        event = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": 0,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._push(event)

    def events(self) -> List[Dict]:
        """Return recorded events, oldest first."""
        return self._buf[self._head :] + self._buf[: self._head]

    def export(self, process_name: str = "repro") -> Dict:
        meta: List[Dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for tid, tname in sorted(_THREAD_NAMES.items()):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        return {
            "traceEvents": meta + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "1 trace us = 1 machine cycle",
                "dropped": self.dropped,
            },
        }

    def write(self, path: str, process_name: str = "repro") -> None:
        """Atomically write the exported trace as JSON to ``path``."""
        payload = json.dumps(self.export(process_name), indent=1) + "\n"
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".trace-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
