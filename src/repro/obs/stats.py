"""Counter sinks for the compiler and the simulators.

Two kinds of objects live here:

* :class:`SchedStats` — counters accumulated while a program is scheduled
  (trace formation, code motion, duplication, recovery-block emission).
  One instance is attached to every compiled program.
* :class:`SimStats` — counters accumulated while a program executes
  (issue-slot occupancy, stalls, branch outcomes, boosted commits vs
  squashes by boost level, shadow-structure high-water marks).  Simulators
  take an optional ``stats`` sink defaulting to ``None`` so the fast paths
  pay a single ``is not None`` test per basic block when disabled.

``snapshot()`` on either object returns a plain, deterministic,
JSON-serialisable dict (sorted keys, histogram keys stringified) — this is
what lands in the ``repro-stats/1`` section of ``bench --json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional

STATS_SCHEMA = "repro-stats/1"
SHARDS_SCHEMA = "repro-shards/1"
SERVICE_SCHEMA = "repro-service/1"


def _hist(d: Dict) -> Dict[str, int]:
    """Render a histogram dict deterministically (sorted, string keys)."""
    return {str(k): d[k] for k in sorted(d)}


@dataclass
class SchedStats:
    """Counters from trace formation, code motion, and list scheduling."""

    # Legacy counters (pre-dating repro.obs); names are load-bearing.
    boosted: int = 0
    duplicates: int = 0
    safe_speculative: int = 0
    traces: int = 0
    split_blocks: int = 0

    # Trace formation.
    trace_lengths: Dict[int, int] = field(default_factory=dict)

    # Code motion.
    motions_attempted: int = 0
    motions_accepted: int = 0
    motions_rejected: Dict[str, int] = field(default_factory=dict)

    # Speculation and duplication.
    boosted_by_level: Dict[int, int] = field(default_factory=dict)
    dup_kinds: Dict[str, int] = field(default_factory=dict)

    # Recovery code.
    recovery_blocks: int = 0
    recovery_instrs: int = 0

    # List scheduling.
    list_blocks: int = 0
    list_instrs: int = 0

    # Static schedule shape (filled by record_schedule_occupancy).
    issue_slots: int = 0
    issue_slots_filled: int = 0

    def note_trace(self, nblocks: int) -> None:
        self.traces += 1
        self.trace_lengths[nblocks] = self.trace_lengths.get(nblocks, 0) + 1

    def note_rejected(self, code: str) -> None:
        self.motions_rejected[code] = self.motions_rejected.get(code, 0) + 1

    def note_boost_level(self, level: int) -> None:
        self.boosted_by_level[level] = self.boosted_by_level.get(level, 0) + 1

    def note_dup(self, kind: str) -> None:
        self.dup_kinds[kind] = self.dup_kinds.get(kind, 0) + 1

    @property
    def issue_slot_occupancy(self) -> float:
        if not self.issue_slots:
            return 0.0
        return self.issue_slots_filled / self.issue_slots

    def snapshot(self) -> Dict[str, object]:
        return {
            "boosted": self.boosted,
            "boosted_by_level": _hist(self.boosted_by_level),
            "dup_kinds": _hist(self.dup_kinds),
            "duplicates": self.duplicates,
            "issue_slot_occupancy": round(self.issue_slot_occupancy, 6),
            "issue_slots": self.issue_slots,
            "issue_slots_filled": self.issue_slots_filled,
            "list_blocks": self.list_blocks,
            "list_instrs": self.list_instrs,
            "motions_accepted": self.motions_accepted,
            "motions_attempted": self.motions_attempted,
            "motions_rejected": _hist(self.motions_rejected),
            "recovery_blocks": self.recovery_blocks,
            "recovery_instrs": self.recovery_instrs,
            "safe_speculative": self.safe_speculative,
            "split_blocks": self.split_blocks,
            "trace_lengths": _hist(self.trace_lengths),
            "traces": self.traces,
        }


def record_schedule_occupancy(sched, stats: SchedStats) -> None:
    """Walk a scheduled program and record static issue-slot occupancy.

    ``sched`` is duck-typed (a ``ScheduledProgram``): it must expose
    ``machine.issue_width`` and ``procedures`` mapping to objects whose
    ``blocks`` have ``cycles`` — each cycle a sequence of slots, ``None``
    meaning an empty slot.
    """
    width = sched.machine.issue_width
    slots = 0
    filled = 0
    for proc in sched.procedures.values():
        for block in proc.blocks:
            for row in block.cycles:
                slots += width
                for slot in row:
                    if slot is not None:
                        filled += 1
    stats.issue_slots += slots
    stats.issue_slots_filled += filled


@dataclass
class SimStats:
    """Counters from one simulator run.

    The hot loops only touch :attr:`block_execs` (a per-(proc, block)
    execution counter) and call the ``note_*`` hooks at block boundaries;
    the per-instruction aggregates are reconstructed after the run by the
    ``finalize_*`` methods from static per-block shapes, so instrumented
    runs stay close to uninstrumented speed.
    """

    #: Simulators treat a sink with ``collecting = False`` (NullStats)
    #: exactly like ``stats=None`` in their hot loops — only the final
    #: ``finalize_*`` call still reaches it.
    collecting: ClassVar[bool] = True

    kind: str = ""

    # Headline counters (mirrors of ExecutionResult, for self-containment).
    cycles: int = 0
    instrs: int = 0
    nops: int = 0
    branches: int = 0
    mispredicts: int = 0

    # Execution shape.
    blocks_executed: int = 0
    rows_executed: int = 0
    slots_total: int = 0
    slots_filled: int = 0
    interlock_stall_cycles: int = 0

    # Speculation.
    boosted_executed: int = 0
    boosted_squashed: int = 0
    boosted_by_level: Dict[int, int] = field(default_factory=dict)
    boosted_commits_by_level: Dict[int, int] = field(default_factory=dict)
    boosted_squashes_by_level: Dict[int, int] = field(default_factory=dict)
    commit_events: int = 0
    squash_events: int = 0

    # Recovery code.
    recovery_invocations: int = 0
    recovery_instrs: int = 0
    recovery_cycles: int = 0

    # Shadow-structure high-water marks.
    shadow_high_water: int = 0
    storebuf_high_water: int = 0

    # Translating backend (repro.hw.translate); zero under the
    # interpreter backends.
    translated_blocks: int = 0
    superblocks_chained: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    trace_invalidations: int = 0

    # Dynamic (out-of-order) pipeline.
    rob_high_water: int = 0
    rob_occupancy_sum: int = 0
    fetch_queue_high_water: int = 0
    fetch_stall_cycles: int = 0
    rename_stall_events: int = 0
    flushes: int = 0

    # Dynamic-machine memory speculation (zero without an LSQ; see
    # docs/memory-speculation.md for the counter -> figure mapping).
    stlf_hits: int = 0
    memdep_squashes: int = 0
    memdep_stall_cycles: int = 0
    lsq_high_water: int = 0
    lsq_occupancy_sum: int = 0

    # Transient hot-loop state; cleared by finalize_*.  ``None`` (as in
    # NullStats) tells the hot loops to skip even the per-block counter.
    block_execs: Optional[Dict] = field(default_factory=dict)
    pending: List[List[int]] = field(default_factory=list)

    # -- hot-path hooks -------------------------------------------------

    def note_boosted(self, level: int) -> None:
        self.boosted_by_level[level] = self.boosted_by_level.get(level, 0) + 1
        self.pending.append([level, level])

    def _flush_pending(self) -> None:
        squashes = self.boosted_squashes_by_level
        for level, _ in self.pending:
            squashes[level] = squashes.get(level, 0) + 1
        self.pending.clear()

    def note_branch_commit(self, shadow_out: int, store_out: int) -> None:
        if shadow_out > self.shadow_high_water:
            self.shadow_high_water = shadow_out
        if store_out > self.storebuf_high_water:
            self.storebuf_high_water = store_out
        self.commit_events += 1
        commits = self.boosted_commits_by_level
        keep = []
        for entry in self.pending:
            entry[1] -= 1
            if entry[1] <= 0:
                level = entry[0]
                commits[level] = commits.get(level, 0) + 1
            else:
                keep.append(entry)
        self.pending = keep

    def note_squash(self, shadow_out: int, store_out: int) -> None:
        if shadow_out > self.shadow_high_water:
            self.shadow_high_water = shadow_out
        if store_out > self.storebuf_high_water:
            self.storebuf_high_water = store_out
        self.squash_events += 1
        self._flush_pending()

    def note_recovery(self, overhead: int, ninstrs: int) -> None:
        self.recovery_cycles += overhead + ninstrs
        self.recovery_instrs += ninstrs
        self._flush_pending()

    def note_dynamic_cycle(
        self, rob_len: int, fetchq_len: int, fetch_stalled: bool
    ) -> None:
        if rob_len > self.rob_high_water:
            self.rob_high_water = rob_len
        self.rob_occupancy_sum += rob_len
        if fetchq_len > self.fetch_queue_high_water:
            self.fetch_queue_high_water = fetchq_len
        if fetch_stalled:
            self.fetch_stall_cycles += 1

    # -- post-run aggregation -------------------------------------------

    def _copy_result(self, result) -> None:
        self.cycles = result.cycle_count
        self.instrs = result.instr_count
        self.nops = result.nop_count
        self.branches = result.branch_count
        self.mispredicts = result.mispredict_count

    def _copy_translation(self, sim) -> None:
        counters = getattr(sim, "translate_counters", None)
        if counters is None:
            return
        self.translated_blocks = counters["translated_blocks"]
        self.superblocks_chained = counters["superblocks_chained"]
        self.trace_hits = counters["trace_hits"]
        self.trace_misses = counters["trace_misses"]
        self.trace_invalidations = counters["trace_invalidations"]

    def _accumulate_blocks(self, shapes: Dict) -> None:
        """Combine per-block execution counts with static block shapes.

        ``shapes`` maps the same keys used in :attr:`block_execs` to
        ``(rows, filled_slots, width)`` tuples.
        """
        for key, count in self.block_execs.items():
            rows, filled, width = shapes[key]
            self.blocks_executed += count
            self.rows_executed += count * rows
            self.slots_total += count * rows * width
            self.slots_filled += count * filled
        self.block_execs = {}

    def finalize_superscalar(self, sim) -> None:
        self.kind = "superscalar"
        self._copy_result(sim.result)
        self.boosted_executed = sim.boosted_executed
        self.boosted_squashed = sim.boosted_squashed
        self.recovery_invocations = sim.recovery_invocations
        width = sim.sched.machine.issue_width
        shapes = {}
        for proc in sim.sched.procedures.values():
            for idx, block in enumerate(proc.blocks):
                filled = sum(
                    1
                    for row in block.cycles
                    for slot in row
                    if slot is not None
                )
                shapes[(proc.name, idx)] = (len(block.cycles), filled, width)
        self._accumulate_blocks(shapes)
        self._copy_translation(sim)
        stall = self.cycles - self.rows_executed - self.recovery_cycles
        self.interlock_stall_cycles = max(stall, 0)
        self.pending = []

    def finalize_functional(self, sim, shapes: Dict) -> None:
        self.kind = "functional"
        self._copy_result(sim.result)
        self._accumulate_blocks(shapes)
        self._copy_translation(sim)
        self.pending = []

    def finalize_dynamic(self, sim) -> None:
        self.kind = "dynamic"
        self._copy_result(sim.result)
        # Memory-speculation counters are tracked as plain ints on the
        # simulator (and its LSQ) — no hot-loop hook needed.
        self.memdep_squashes = getattr(sim, "memdep_squashes", 0)
        self.memdep_stall_cycles = getattr(sim, "memdep_stall_cycles", 0)
        lsq = getattr(sim, "lsq", None)
        if lsq is not None:
            self.stlf_hits = lsq.stlf_hits
            self.lsq_high_water = lsq.high_water
            self.lsq_occupancy_sum = lsq.occupancy_sum
        self.block_execs = {}
        self.pending = []

    # -- reporting ------------------------------------------------------

    @property
    def issue_slot_occupancy(self) -> float:
        if not self.slots_total:
            return 0.0
        return self.slots_filled / self.slots_total

    @property
    def squash_rate(self) -> float:
        if not self.boosted_executed:
            return 0.0
        return self.boosted_squashed / self.boosted_executed

    @property
    def rob_occupancy(self) -> float:
        if not self.cycles:
            return 0.0
        return self.rob_occupancy_sum / self.cycles

    @property
    def lsq_occupancy(self) -> float:
        if not self.cycles:
            return 0.0
        return self.lsq_occupancy_sum / self.cycles

    def snapshot(self) -> Dict[str, object]:
        return {
            "blocks_executed": self.blocks_executed,
            "boosted_by_level": _hist(self.boosted_by_level),
            "boosted_commits_by_level": _hist(self.boosted_commits_by_level),
            "boosted_executed": self.boosted_executed,
            "boosted_squashed": self.boosted_squashed,
            "boosted_squashes_by_level": _hist(self.boosted_squashes_by_level),
            "branches": self.branches,
            "commit_events": self.commit_events,
            "cycles": self.cycles,
            "fetch_queue_high_water": self.fetch_queue_high_water,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "flushes": self.flushes,
            "instrs": self.instrs,
            "interlock_stall_cycles": self.interlock_stall_cycles,
            "issue_slot_occupancy": round(self.issue_slot_occupancy, 6),
            "kind": self.kind,
            "lsq_high_water": self.lsq_high_water,
            "lsq_occupancy": round(self.lsq_occupancy, 6),
            "memdep_squashes": self.memdep_squashes,
            "memdep_stall_cycles": self.memdep_stall_cycles,
            "mispredicts": self.mispredicts,
            "nops": self.nops,
            "recovery_cycles": self.recovery_cycles,
            "recovery_instrs": self.recovery_instrs,
            "recovery_invocations": self.recovery_invocations,
            "rename_stall_events": self.rename_stall_events,
            "rob_high_water": self.rob_high_water,
            "rob_occupancy": round(self.rob_occupancy, 6),
            "rows_executed": self.rows_executed,
            "shadow_high_water": self.shadow_high_water,
            "slots_filled": self.slots_filled,
            "slots_total": self.slots_total,
            "squash_events": self.squash_events,
            "squash_rate": round(self.squash_rate, 6),
            "stlf_hits": self.stlf_hits,
            "storebuf_high_water": self.storebuf_high_water,
            "superblocks_chained": self.superblocks_chained,
            "trace_hits": self.trace_hits,
            "trace_invalidations": self.trace_invalidations,
            "trace_misses": self.trace_misses,
            "translated_blocks": self.translated_blocks,
        }


@dataclass
class ShardStats:
    """Counters from one sharded campaign run.

    Accumulated by :func:`repro.harness.coordinator.run_sharded`;
    ``snapshot()`` lands in the ``repro-shards/1`` section of
    ``bench --json`` next to the ``repro-stats/1`` counters.
    """

    shards: int = 0  # shard count actually used (after clamping)
    tasks: int = 0  # total task matrix size
    resumed_tasks: int = 0  # records adopted from prior journals
    restarts: int = 0  # crashed shard processes respawned
    chaos_kills: int = 0  # whole-shard SIGKILLs injected by chaos
    steals: int = 0  # lease takeovers that produced records
    stolen_tasks: int = 0  # records computed under a stolen lease
    salvaged_tasks: int = 0  # records recovered by the coordinator
    failed_tasks: int = 0  # tasks degraded to structured failures

    def snapshot(self) -> Dict[str, object]:
        return {
            "chaos_kills": self.chaos_kills,
            "failed_tasks": self.failed_tasks,
            "restarts": self.restarts,
            "resumed_tasks": self.resumed_tasks,
            "salvaged_tasks": self.salvaged_tasks,
            "shards": self.shards,
            "steals": self.steals,
            "stolen_tasks": self.stolen_tasks,
            "tasks": self.tasks,
        }


@dataclass
class ServiceStats:
    """Counters from one campaign-service daemon lifetime.

    Accumulated by :class:`repro.service.daemon.CampaignService`;
    ``snapshot()`` is the ``repro-service/1`` section of ``repro status``
    and of the drain summary.  Everything here is observational — none of
    it feeds back into scheduling decisions, so a counter bug can never
    change a report.
    """

    admitted: int = 0  # jobs accepted into the queue
    rejected_busy: int = 0  # refused: admission queue full
    rejected_draining: int = 0  # refused: drain in progress
    rejected_invalid: int = 0  # refused: malformed request/params
    completed: int = 0  # jobs terminal with state done
    failed: int = 0  # jobs terminal with state failed
    deadline_expired: int = 0  # jobs terminal with state deadline
    resumed_jobs: int = 0  # non-terminal jobs re-adopted by --resume
    runner_restarts: int = 0  # runner children respawned after dying
    chaos_kills: int = 0  # runner SIGKILLs injected by service chaos
    breaker_opened: int = 0  # circuit-open transitions
    breaker_half_open_probes: int = 0  # probe jobs let through a cooldown
    breaker_closed: int = 0  # circuits restored by a clean probe

    @property
    def rejected(self) -> int:
        return (self.rejected_busy + self.rejected_draining
                + self.rejected_invalid)

    def snapshot(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "breaker_closed": self.breaker_closed,
            "breaker_half_open_probes": self.breaker_half_open_probes,
            "breaker_opened": self.breaker_opened,
            "chaos_kills": self.chaos_kills,
            "completed": self.completed,
            "deadline_expired": self.deadline_expired,
            "failed": self.failed,
            "rejected": self.rejected,
            "rejected_busy": self.rejected_busy,
            "rejected_draining": self.rejected_draining,
            "rejected_invalid": self.rejected_invalid,
            "resumed_jobs": self.resumed_jobs,
            "runner_restarts": self.runner_restarts,
        }


@dataclass
class FuzzStats:
    """Counters from one generative fuzz campaign.

    Accumulated by :class:`repro.verify.fuzz.fuzzcampaign.FuzzCampaign`;
    ``snapshot()`` lands in the ``repro-stats/1`` section of
    ``fuzz --json``.  Everything here is deterministic for a given
    (seed range, config, model/backend matrix) — timing never leaks in —
    so merged reports stay byte-identical at any parallelism.
    """

    programs: int = 0  # generated programs that entered the oracle
    compile_errors: int = 0  # programs the pipeline failed to prepare
    runs: int = 0  # differential comparisons executed
    plans: int = 0  # fault plans drawn (incl. the benign plan)
    trapped: int = 0  # comparisons whose reference run trapped
    flipped: int = 0  # comparisons under a prediction-flip plan
    injected_hits: int = 0  # injected-fault firings across both machines
    divergent: int = 0  # comparisons that disagreed
    oracle_errors: int = 0  # harness-level failures (timeouts, workers)
    backend_cells: int = 0  # (program, engine) functional cross-checks
    model_cells: int = 0  # (program, model, backend) superscalar cells
    dynamic_cells: int = 0  # (program, variant) dynamic-machine cells
    reduced: int = 0  # divergences auto-reduced to a minimal source
    triage_buckets: int = 0  # distinct divergence signatures filed

    def snapshot(self) -> Dict[str, object]:
        return {
            "backend_cells": self.backend_cells,
            "compile_errors": self.compile_errors,
            "divergent": self.divergent,
            "dynamic_cells": self.dynamic_cells,
            "flipped": self.flipped,
            "injected_hits": self.injected_hits,
            "model_cells": self.model_cells,
            "oracle_errors": self.oracle_errors,
            "plans": self.plans,
            "programs": self.programs,
            "reduced": self.reduced,
            "runs": self.runs,
            "trapped": self.trapped,
            "triage_buckets": self.triage_buckets,
        }


class NullStats(SimStats):
    """A sink whose hooks do nothing.

    Used by the perf-smoke overhead check: running with a ``NullStats``
    sink exercises the ``collecting`` gate at simulator construction and
    the ``finalize_*`` seam without collecting anything, which bounds the
    cost of having the instrumentation attached at all.
    """

    collecting: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()
        # Disables the per-block execution counter too — the finalizers
        # below never read it, so the hot loops can skip the dict update.
        self.block_execs = None

    def note_boosted(self, level: int) -> None:
        pass

    def note_branch_commit(self, shadow_out: int, store_out: int) -> None:
        pass

    def note_squash(self, shadow_out: int, store_out: int) -> None:
        pass

    def note_recovery(self, overhead: int, ninstrs: int) -> None:
        pass

    def note_dynamic_cycle(
        self, rob_len: int, fetchq_len: int, fetch_stalled: bool
    ) -> None:
        pass

    def finalize_superscalar(self, sim) -> None:
        self.kind = "null"

    def finalize_functional(self, sim, shapes: Optional[Dict] = None) -> None:
        self.kind = "null"

    def finalize_dynamic(self, sim) -> None:
        self.kind = "null"
