"""Fluent IR builder.

Used by the Minic code generator, the workload kernels written directly in
IR, and throughout the test suite.  Example::

    b = ProcBuilder("count")
    b.label("loop")
    b.lw(t0, a0, 0)
    b.addi(a0, a0, 4)
    b.addi(t1, t1, 1)
    b.bne(t0, ZERO, "loop")
    b.label("done")
    b.move(V0, t1)
    b.ret()
    proc = b.build()
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA, Reg
from repro.program.block import BasicBlock
from repro.program.procedure import DataSegment, Procedure


class ProcBuilder:
    def __init__(self, name: str, data: Optional[DataSegment] = None) -> None:
        self.proc = Procedure(name)
        self.data = data
        self._current: Optional[BasicBlock] = None
        self._anon = 0
        self._vreg = 0

    # ----------------------------------------------------------------- blocks
    def label(self, name: str) -> "ProcBuilder":
        """Start a new block; the previous block falls through to it."""
        block = BasicBlock(name)
        self.proc.add_block(block)
        self._current = block
        return self

    def _block(self) -> BasicBlock:
        if self._current is None or self._current.is_terminated:
            self._anon += 1
            self.label(f".anon{self._anon}")
        return self._current

    def emit(self, instr: Instruction) -> Instruction:
        self._block().append(instr)
        return instr

    def vreg(self) -> Reg:
        """A fresh virtual register."""
        reg = Reg.virtual(self._vreg)
        self._vreg += 1
        return reg

    def build(self) -> Procedure:
        return self.proc

    # -------------------------------------------------------------------- ALU
    def _rrr(self, op: Opcode, dst: Reg, a: Reg, b: Reg) -> Instruction:
        return self.emit(Instruction(op, dst=dst, srcs=(a, b)))

    def _rri(self, op: Opcode, dst: Reg, a: Reg, imm: int) -> Instruction:
        return self.emit(Instruction(op, dst=dst, srcs=(a,), imm=imm))

    def add(self, d, a, b): return self._rrr(Opcode.ADD, d, a, b)
    def sub(self, d, a, b): return self._rrr(Opcode.SUB, d, a, b)
    def and_(self, d, a, b): return self._rrr(Opcode.AND, d, a, b)
    def or_(self, d, a, b): return self._rrr(Opcode.OR, d, a, b)
    def xor(self, d, a, b): return self._rrr(Opcode.XOR, d, a, b)
    def nor(self, d, a, b): return self._rrr(Opcode.NOR, d, a, b)
    def slt(self, d, a, b): return self._rrr(Opcode.SLT, d, a, b)
    def sltu(self, d, a, b): return self._rrr(Opcode.SLTU, d, a, b)
    def mul(self, d, a, b): return self._rrr(Opcode.MUL, d, a, b)
    def div(self, d, a, b): return self._rrr(Opcode.DIV, d, a, b)
    def rem(self, d, a, b): return self._rrr(Opcode.REM, d, a, b)
    def sllv(self, d, a, b): return self._rrr(Opcode.SLLV, d, a, b)
    def srlv(self, d, a, b): return self._rrr(Opcode.SRLV, d, a, b)
    def srav(self, d, a, b): return self._rrr(Opcode.SRAV, d, a, b)

    def addi(self, d, a, imm): return self._rri(Opcode.ADDI, d, a, imm)
    def andi(self, d, a, imm): return self._rri(Opcode.ANDI, d, a, imm)
    def ori(self, d, a, imm): return self._rri(Opcode.ORI, d, a, imm)
    def xori(self, d, a, imm): return self._rri(Opcode.XORI, d, a, imm)
    def slti(self, d, a, imm): return self._rri(Opcode.SLTI, d, a, imm)
    def sltiu(self, d, a, imm): return self._rri(Opcode.SLTIU, d, a, imm)
    def sll(self, d, a, imm): return self._rri(Opcode.SLL, d, a, imm)
    def srl(self, d, a, imm): return self._rri(Opcode.SRL, d, a, imm)
    def sra(self, d, a, imm): return self._rri(Opcode.SRA, d, a, imm)

    def li(self, d, imm):
        return self.emit(Instruction(Opcode.LI, dst=d, imm=imm))

    def lui(self, d, imm):
        return self.emit(Instruction(Opcode.LUI, dst=d, imm=imm))

    def move(self, d, s):
        return self.emit(Instruction(Opcode.MOVE, dst=d, srcs=(s,)))

    def la(self, d, symbol: str):
        """Load the address of a data-segment symbol."""
        if self.data is None:
            raise ValueError("builder has no data segment for la")
        return self.li(d, self.data.address_of(symbol))

    # ----------------------------------------------------------------- memory
    def lw(self, d, base, off=0):
        return self.emit(Instruction(Opcode.LW, dst=d, srcs=(base,), imm=off))

    def lb(self, d, base, off=0):
        return self.emit(Instruction(Opcode.LB, dst=d, srcs=(base,), imm=off))

    def lbu(self, d, base, off=0):
        return self.emit(Instruction(Opcode.LBU, dst=d, srcs=(base,), imm=off))

    def sw(self, val, base, off=0):
        return self.emit(Instruction(Opcode.SW, srcs=(val, base), imm=off))

    def sb(self, val, base, off=0):
        return self.emit(Instruction(Opcode.SB, srcs=(val, base), imm=off))

    # ---------------------------------------------------------------- control
    def beq(self, a, b, target):
        return self.emit(Instruction(Opcode.BEQ, srcs=(a, b), target=target))

    def bne(self, a, b, target):
        return self.emit(Instruction(Opcode.BNE, srcs=(a, b), target=target))

    def blez(self, a, target):
        return self.emit(Instruction(Opcode.BLEZ, srcs=(a,), target=target))

    def bgtz(self, a, target):
        return self.emit(Instruction(Opcode.BGTZ, srcs=(a,), target=target))

    def bltz(self, a, target):
        return self.emit(Instruction(Opcode.BLTZ, srcs=(a,), target=target))

    def bgez(self, a, target):
        return self.emit(Instruction(Opcode.BGEZ, srcs=(a,), target=target))

    def j(self, target):
        return self.emit(Instruction(Opcode.J, target=target))

    def jal(self, target):
        return self.emit(Instruction(Opcode.JAL, dst=RA, target=target))

    def jr(self, reg):
        return self.emit(Instruction(Opcode.JR, srcs=(reg,)))

    def ret(self):
        return self.jr(RA)

    # ------------------------------------------------------------------ misc
    def nop(self):
        return self.emit(Instruction(Opcode.NOP))

    def print_(self, reg):
        return self.emit(Instruction(Opcode.PRINT, srcs=(reg,)))

    def halt(self):
        return self.emit(Instruction(Opcode.HALT))
