"""Binary object-file format for IR programs.

Real toolchains persist compiled artifacts; this module gives the
reproduction the same ability: a :class:`~repro.program.procedure.Program`
serialises to a compact self-contained byte string and loads back with
identical structure (labels, instruction fields, boosting levels, static
predictions, data segment).

Layout (all integers little-endian):

* magic ``BST1`` (4 bytes), entry-name index (u32), mem_size (u32)
* string table: count (u32), then per string length (u16) + UTF-8 bytes —
  every label, symbol, and procedure name is interned here
* data segment: symbol count (u32); per symbol name-index (u32), address
  (u32), size (u32); then initial-image chunk count (u32); per chunk
  address (u32), length (u32), raw bytes
* procedures: count (u32); per procedure name-index (u32), block count
  (u32); per block label-index (u32), body length (u32), instruction
  records, terminator flag (u8) + record
* instruction record (fixed 19 bytes):
  opcode (u8), boost (u8), predict (u8: 0 none / 1 taken / 2 not-taken),
  flags (u8: bit0 has-dst, bit1 has-imm, bit2 has-target),
  dst (u16), src count (u8), srcs (3 × u16), imm (i32), target
  name-index (u16)

Registers above index 65534 and more than three sources are rejected —
both are outside anything the compiler emits.
"""

from __future__ import annotations

import struct

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.procedure import DataSegment, Procedure, Program

MAGIC = b"BST1"
_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_NO_REG = 0xFFFF


class ObjFileError(ValueError):
    pass


class _StringTable:
    def __init__(self) -> None:
        self._strings: list[str] = []
        self._index: dict[str, int] = {}

    def intern(self, text: str) -> int:
        if text not in self._index:
            self._index[text] = len(self._strings)
            self._strings.append(text)
        return self._index[text]

    def emit(self) -> bytes:
        out = [struct.pack("<I", len(self._strings))]
        for text in self._strings:
            raw = text.encode()
            out.append(struct.pack("<H", len(raw)))
            out.append(raw)
        return b"".join(out)


class _Reader:
    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.raw):
            raise ObjFileError("truncated object file")
        chunk = self.raw[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self.take(4))[0]


def _encode_instruction(instr: Instruction, strings: _StringTable) -> bytes:
    if len(instr.srcs) > 3:
        raise ObjFileError(f"too many sources: {instr}")
    predict = 0
    if instr.predict_taken is True:
        predict = 1
    elif instr.predict_taken is False:
        predict = 2
    flags = 0
    dst = _NO_REG
    if instr.dst is not None:
        if instr.dst.index >= _NO_REG:
            raise ObjFileError(f"register index too large: {instr}")
        flags |= 1
        dst = instr.dst.index
    imm = instr.imm if instr.imm is not None else 0
    if instr.imm is not None:
        flags |= 2
    target = 0
    if instr.target is not None:
        flags |= 4
        target = strings.intern(instr.target)
        if target > 0xFFFF:
            raise ObjFileError("string table overflow")
    srcs = [r.index for r in instr.srcs] + [_NO_REG] * (3 - len(instr.srcs))
    return struct.pack(
        "<BBBBHBHHHiH",
        _OPCODE_INDEX[instr.op], instr.boost, predict, flags, dst,
        len(instr.srcs), srcs[0], srcs[1], srcs[2], imm, target)

_RECORD = struct.Struct("<BBBBHBHHHiH")


def _decode_instruction(reader: _Reader, strings: list[str]) -> Instruction:
    fields = _RECORD.unpack(reader.take(_RECORD.size))
    (op_idx, boost, predict, flags, dst, nsrcs, s0, s1, s2, imm,
     target_idx) = fields
    if op_idx >= len(_OPCODES):
        raise ObjFileError(f"bad opcode index {op_idx}")
    srcs = tuple(Reg(s) for s in (s0, s1, s2)[:nsrcs])
    instr = Instruction(
        _OPCODES[op_idx],
        dst=Reg(dst) if flags & 1 else None,
        srcs=srcs,
        imm=imm if flags & 2 else None,
        target=strings[target_idx] if flags & 4 else None,
        boost=boost,
    )
    if predict == 1:
        instr.predict_taken = True
    elif predict == 2:
        instr.predict_taken = False
    return instr


def save_program(program: Program) -> bytes:
    """Serialise a program (IR + data segment) to bytes."""
    strings = _StringTable()
    body = []

    # Data segment.
    symbols = program.data.symbols()
    chunk = [struct.pack("<I", len(symbols))]
    for name, (addr, size) in symbols.items():
        chunk.append(struct.pack("<III", strings.intern(name), addr, size))
    image = program.data.initial_image()
    chunk.append(struct.pack("<I", len(image)))
    for addr, raw in image:
        chunk.append(struct.pack("<II", addr, len(raw)))
        chunk.append(raw)
    body.append(b"".join(chunk))

    # Procedures.
    chunk = [struct.pack("<I", len(program.procedures))]
    for proc in program.procedures.values():
        chunk.append(struct.pack("<II", strings.intern(proc.name),
                                 len(proc.blocks)))
        for block in proc.blocks:
            chunk.append(struct.pack("<II", strings.intern(block.label),
                                     len(block.body)))
            for instr in block.body:
                chunk.append(_encode_instruction(instr, strings))
            if block.terminator is not None:
                chunk.append(b"\x01")
                chunk.append(_encode_instruction(block.terminator, strings))
            else:
                chunk.append(b"\x00")
    body.append(b"".join(chunk))

    header = MAGIC + struct.pack("<II", strings.intern(program.entry),
                                 program.mem_size)
    return header + strings.emit() + b"".join(body)


def load_program(raw: bytes) -> Program:
    """Deserialise :func:`save_program` output."""
    reader = _Reader(raw)
    if reader.take(4) != MAGIC:
        raise ObjFileError("not a boosting object file")
    entry_idx = reader.u32()
    mem_size = reader.u32()

    strings = []
    for _ in range(reader.u32()):
        length = reader.u16()
        strings.append(reader.take(length).decode())

    data = DataSegment()
    symbol_count = reader.u32()
    symbols = []
    for _ in range(symbol_count):
        name_idx, addr, size = (reader.u32(), reader.u32(), reader.u32())
        symbols.append((strings[name_idx], addr, size))
    # Symbols were allocated in address order originally.
    for name, addr, size in sorted(symbols, key=lambda s: s[1]):
        got = data.alloc(name, size)
        if got != addr:
            raise ObjFileError(
                f"data layout mismatch for {name!r}: {got:#x} != {addr:#x}")
    for _ in range(reader.u32()):
        addr, length = reader.u32(), reader.u32()
        data._init.append((addr, reader.take(length)))

    program = Program(data=data, entry=strings[entry_idx], mem_size=mem_size)
    for _ in range(reader.u32()):
        name = strings[reader.u32()]
        nblocks = reader.u32()
        proc = Procedure(name)
        for _ in range(nblocks):
            label = strings[reader.u32()]
            block = BasicBlock(label)
            for _ in range(reader.u32()):
                block.body.append(_decode_instruction(reader, strings))
            if reader.u8():
                block.terminator = _decode_instruction(reader, strings)
            proc.add_block(block)
        program.add(proc)
    return program
