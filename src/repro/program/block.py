"""Basic blocks.

A block is a label, a straight-line body, and an optional terminator.  A
block with no terminator falls through to the next block in the procedure's
layout order.  Conditional branches have two successors: the branch target
(the *taken* edge) and the layout successor (the *fall-through* edge).

Blocks also carry the profile information the trace selector needs: an
execution count and the probability that the terminating conditional branch
is taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass
class BasicBlock:
    label: str
    body: list[Instruction] = field(default_factory=list)
    terminator: Optional[Instruction] = None
    #: profile data — dynamic execution count of this block
    exec_count: int = 0
    #: probability the terminator conditional branch is taken (profile)
    taken_prob: Optional[float] = None

    def append(self, instr: Instruction) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        if instr.is_terminator:
            self.terminator = instr
        else:
            self.body.append(instr)

    # ---------------------------------------------------------------- queries
    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def ends_in_cond_branch(self) -> bool:
        return (self.terminator is not None
                and self.terminator.op.is_cond_branch)

    @property
    def ends_in_call(self) -> bool:
        return self.terminator is not None and self.terminator.op.is_call

    @property
    def ends_in_return(self) -> bool:
        return (self.terminator is not None
                and self.terminator.op is Opcode.JR)

    def instructions(self) -> Iterator[Instruction]:
        """Body followed by the terminator (if any)."""
        yield from self.body
        if self.terminator is not None:
            yield self.terminator

    def non_branch_count(self) -> int:
        return len(self.body)

    def find(self, uid: int) -> Optional[Instruction]:
        for instr in self.instructions():
            if instr.uid == uid:
                return instr
        return None

    def remove(self, instr: Instruction) -> None:
        """Remove an instruction from the body by identity."""
        for i, existing in enumerate(self.body):
            if existing is instr:
                del self.body[i]
                return
        raise ValueError(f"instruction {instr} not in block {self.label}")

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {instr}" for instr in self.instructions())
        return "\n".join(lines)

    def __repr__(self) -> str:
        n = len(self.body) + (1 if self.terminator else 0)
        return f"<BasicBlock {self.label} ({n} instrs)>"
