"""Control-flow graph over a procedure's basic blocks.

Successor conventions:

* conditional branch — ``[taken_target, fallthrough]``
* unconditional jump — ``[target]``
* call (``jal``) — ``[fallthrough]`` (the callee is a separate graph)
* return (``jr``) / ``halt`` — ``[]``
* unterminated block — ``[fallthrough]``
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.program.block import BasicBlock
from repro.program.procedure import Procedure


class CFG:
    """Successor/predecessor maps plus common traversals.

    The CFG is a *snapshot*: rebuild it (or call :meth:`refresh`) after
    structural edits such as inserting compensation blocks.
    """

    def __init__(self, proc: Procedure) -> None:
        self.proc = proc
        self._succs: dict[str, list[str]] = {}
        self._preds: dict[str, list[str]] = {}
        self.refresh()

    def refresh(self) -> None:
        self._succs.clear()
        self._preds.clear()
        for block in self.proc.blocks:
            self._succs[block.label] = self._compute_succs(block)
            self._preds.setdefault(block.label, [])
        for label, succs in self._succs.items():
            for succ in succs:
                self._preds.setdefault(succ, []).append(label)

    def _compute_succs(self, block: BasicBlock) -> list[str]:
        term = block.terminator
        fall = self.proc.layout_successor(block.label)
        fall_label = fall.label if fall is not None else None
        if term is None:
            return [fall_label] if fall_label is not None else []
        op = term.op
        if op.is_cond_branch:
            succs = [term.target]
            if fall_label is not None:
                succs.append(fall_label)
            return succs
        if op.is_call:
            return [fall_label] if fall_label is not None else []
        if op.is_indirect:  # jr — a return; no intraprocedural successor
            return []
        if op.is_jump:
            return [term.target]
        return []  # halt

    # ---------------------------------------------------------------- queries
    def succs(self, label: str) -> list[str]:
        return self._succs[label]

    def preds(self, label: str) -> list[str]:
        return self._preds[label]

    def taken_succ(self, label: str) -> Optional[str]:
        """Target of the block's conditional branch, if it ends in one."""
        block = self.proc.block(label)
        if block.ends_in_cond_branch:
            return block.terminator.target
        return None

    def fall_succ(self, label: str) -> Optional[str]:
        block = self.proc.block(label)
        if block.ends_in_cond_branch:
            fall = self.proc.layout_successor(label)
            return fall.label if fall is not None else None
        succs = self._succs[label]
        return succs[0] if len(succs) == 1 else None

    def predicted_succ(self, label: str) -> Optional[str]:
        """The successor along the statically-predicted direction."""
        block = self.proc.block(label)
        term = block.terminator
        if term is None or not term.op.is_cond_branch:
            return self.fall_succ(label)
        if term.predict_taken:
            return self.taken_succ(label)
        return self.fall_succ(label)

    def off_trace_succ(self, label: str, on_trace: str) -> Optional[str]:
        """The other successor of a two-way block."""
        others = [s for s in self._succs[label] if s != on_trace]
        return others[0] if others else None

    # ------------------------------------------------------------- traversals
    def rpo(self) -> list[str]:
        """Reverse post-order from the entry (a topological order ignoring
        back edges)."""
        seen: set[str] = set()
        order: list[str] = []

        entry = self.proc.entry.label
        stack: list[tuple[str, Iterator[str]]] = [(entry, iter(self._succs[entry]))]
        seen.add(entry)
        while stack:
            label, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self._succs[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        order.reverse()
        return order

    def reachable(self) -> set[str]:
        return set(self.rpo())

    def edges(self) -> Iterator[tuple[str, str]]:
        for label, succs in self._succs.items():
            for succ in succs:
                yield (label, succ)
