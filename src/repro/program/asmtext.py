"""Textual assembly round-trip: print a :class:`Program` and parse it back.

The format is deliberately close to MIPS assembly with two extensions from
the paper: a ``.Bn`` boosting suffix on mnemonics and ``<T>``/``<NT>`` static
prediction annotations on conditional branches.  Example::

    .data
    words table 1 2 3
    space buf 64

    .proc main
    entry:
        li $t0, 5
        beq $t0, $zero, done <NT>
    body:
        lw.B1 $t1, 0($t0)
        halt
    done:
        halt
"""

from __future__ import annotations

import re

from repro.isa.opcodes import BY_MNEMONIC, Format
from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.program.block import BasicBlock
from repro.program.procedure import Procedure, Program


# --------------------------------------------------------------------- print
def format_instruction(instr: Instruction) -> str:
    return str(instr)


def format_procedure(proc: Procedure) -> str:
    lines = [f".proc {proc.name}"]
    for block in proc.blocks:
        lines.append(f"{block.label}:")
        lines.extend(f"    {instr}" for instr in block.instructions())
    return "\n".join(lines)


def format_program(program: Program) -> str:
    parts = []
    symbols = program.data.symbols()
    if symbols:
        lines = [".data"]
        image = dict(program.data.initial_image())
        for name, (addr, size) in sorted(symbols.items(), key=lambda kv: kv[1][0]):
            raw = image.get(addr)
            if raw is None:
                lines.append(f"space {name} {size}")
            else:
                words = [
                    int.from_bytes(raw[i:i + 4].ljust(4, b"\0"), "little")
                    for i in range(0, len(raw), 4)
                ]
                lines.append(f"words {name} " + " ".join(str(w) for w in words))
        parts.append("\n".join(lines))
    for proc in program.procedures.values():
        parts.append(format_procedure(proc))
    return "\n\n".join(parts) + "\n"


# --------------------------------------------------------------------- parse
class AsmSyntaxError(ValueError):
    pass


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(r"^(-?\d+)\((\$[\w]+)\)$")


def _parse_reg(token: str) -> Reg:
    if not token.startswith("$"):
        raise AsmSyntaxError(f"expected register, got {token!r}")
    return Reg.named(token[1:])


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AsmSyntaxError(f"expected integer, got {token!r}") from exc


def parse_instruction(text: str) -> Instruction:
    """Parse one instruction line (without label)."""
    text = text.strip()
    predict_taken = None
    if text.endswith("<T>"):
        predict_taken, text = True, text[:-3].strip()
    elif text.endswith("<NT>"):
        predict_taken, text = False, text[:-4].strip()

    head, _, rest = text.partition(" ")
    boost = 0
    if ".B" in head:
        head, suffix = head.split(".B", 1)
        if not suffix.isdigit():
            raise AsmSyntaxError(f"bad boost suffix in {text!r}")
        boost = int(suffix)
    op = BY_MNEMONIC.get(head)
    if op is None:
        raise AsmSyntaxError(f"unknown mnemonic {head!r}")
    args = [a.strip() for a in rest.split(",")] if rest.strip() else []

    fmt = op.fmt
    instr: Instruction
    if fmt is Format.RRR:
        instr = Instruction(op, dst=_parse_reg(args[0]),
                            srcs=(_parse_reg(args[1]), _parse_reg(args[2])))
    elif fmt is Format.RRI:
        instr = Instruction(op, dst=_parse_reg(args[0]),
                            srcs=(_parse_reg(args[1]),), imm=_parse_int(args[2]))
    elif fmt is Format.RI:
        instr = Instruction(op, dst=_parse_reg(args[0]), imm=_parse_int(args[1]))
    elif fmt is Format.RR:
        instr = Instruction(op, dst=_parse_reg(args[0]), srcs=(_parse_reg(args[1]),))
    elif fmt is Format.LOAD:
        m = _MEM_RE.match(args[1])
        if m is None:
            raise AsmSyntaxError(f"bad memory operand {args[1]!r}")
        instr = Instruction(op, dst=_parse_reg(args[0]),
                            srcs=(_parse_reg(m.group(2)),), imm=int(m.group(1)))
    elif fmt is Format.STORE:
        m = _MEM_RE.match(args[1])
        if m is None:
            raise AsmSyntaxError(f"bad memory operand {args[1]!r}")
        instr = Instruction(op, srcs=(_parse_reg(args[0]), _parse_reg(m.group(2))),
                            imm=int(m.group(1)))
    elif fmt is Format.BRANCH2:
        instr = Instruction(op, srcs=(_parse_reg(args[0]), _parse_reg(args[1])),
                            target=args[2])
    elif fmt is Format.BRANCH1:
        instr = Instruction(op, srcs=(_parse_reg(args[0]),), target=args[1])
    elif fmt is Format.JUMP:
        instr = Instruction(op, target=args[0])
    elif fmt is Format.JREG:
        instr = Instruction(op, srcs=(_parse_reg(args[0]),))
    elif fmt is Format.SRC1:
        instr = Instruction(op, srcs=(_parse_reg(args[0]),))
    else:
        instr = Instruction(op)
    instr.boost = boost
    instr.predict_taken = predict_taken
    return instr


def parse_program(text: str) -> Program:
    program = Program()
    proc: Procedure | None = None
    block: BasicBlock | None = None
    mode = None  # None | "data" | "proc"

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == ".data":
            mode = "data"
            continue
        if line.startswith(".proc"):
            mode = "proc"
            name = line.split()[1]
            proc = Procedure(name)
            program.add(proc)
            block = None
            continue
        if mode == "data":
            kind, name, *rest = line.split()
            if kind == "words":
                program.data.words(name, [_parse_int(v) for v in rest])
            elif kind == "space":
                program.data.zeros(name, _parse_int(rest[0]))
            else:
                raise AsmSyntaxError(f"unknown data directive {kind!r}")
            continue
        if mode != "proc" or proc is None:
            raise AsmSyntaxError(f"instruction outside .proc: {line!r}")
        m = _LABEL_RE.match(line)
        if m is not None:
            block = BasicBlock(m.group(1))
            proc.add_block(block)
            continue
        if block is None:
            block = BasicBlock("entry")
            proc.add_block(block)
        block.append(parse_instruction(line))
    return program
