"""Program representation: blocks, procedures, CFG, builder, text form."""

from repro.program.block import BasicBlock
from repro.program.builder import ProcBuilder
from repro.program.cfg import CFG
from repro.program.asmtext import (
    format_instruction, format_procedure, format_program, parse_instruction,
    parse_program,
)
from repro.program.procedure import (
    DATA_BASE, DEFAULT_MEM_SIZE, WORD, DataSegment, Procedure, Program,
)

__all__ = [
    "BasicBlock", "CFG", "DATA_BASE", "DEFAULT_MEM_SIZE", "DataSegment",
    "ProcBuilder", "Procedure", "Program", "WORD", "format_instruction",
    "format_procedure", "format_program", "parse_instruction", "parse_program",
]
