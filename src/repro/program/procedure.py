"""Procedures, programs, and the data segment.

The address space is laid out so that low addresses are unmapped — a load
through a null or small pointer faults, which is exactly the behaviour that
makes speculative loads *unsafe* and boosting interesting:

* ``0x0000 .. 0x0FFF``   unmapped (null-pointer guard)
* ``0x1000 .. data_end`` global data
* ``... stack_top``      stack, growing down from ``mem_size``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.program.block import BasicBlock

DATA_BASE = 0x1000
DEFAULT_MEM_SIZE = 1 << 20
WORD = 4


class DataSegment:
    """Global data: named, word-aligned allocations with optional initialisers."""

    def __init__(self, base: int = DATA_BASE) -> None:
        self.base = base
        self._next = base
        self._symbols: dict[str, tuple[int, int]] = {}  # name -> (addr, size)
        self._init: list[tuple[int, bytes]] = []

    def alloc(self, name: str, size: int) -> int:
        """Reserve ``size`` bytes (word aligned) under ``name``; returns address."""
        if name in self._symbols:
            raise ValueError(f"duplicate global {name!r}")
        size = max(size, 1)
        addr = self._next
        self._symbols[name] = (addr, size)
        self._next = (addr + size + WORD - 1) & ~(WORD - 1)
        return addr

    def words(self, name: str, values: Iterable[int]) -> int:
        """Allocate and initialise an array of 32-bit words."""
        values = list(values)
        addr = self.alloc(name, len(values) * WORD)
        raw = b"".join((v & 0xFFFFFFFF).to_bytes(WORD, "little") for v in values)
        self._init.append((addr, raw))
        return addr

    def bytes_(self, name: str, data: bytes) -> int:
        """Allocate and initialise a byte array (e.g. text input)."""
        addr = self.alloc(name, len(data))
        self._init.append((addr, bytes(data)))
        return addr

    def zeros(self, name: str, nbytes: int) -> int:
        """Allocate ``nbytes`` of zero-initialised storage."""
        return self.alloc(name, nbytes)

    def address_of(self, name: str) -> int:
        return self._symbols[name][0]

    def size_of(self, name: str) -> int:
        return self._symbols[name][1]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    @property
    def end(self) -> int:
        return self._next

    def initial_image(self) -> list[tuple[int, bytes]]:
        return list(self._init)

    def symbols(self) -> dict[str, tuple[int, int]]:
        return dict(self._symbols)


@dataclass
class FrameInfo:
    """Stack-frame bookkeeping shared between the code generator and the
    register allocator.

    ``prologue`` is the ``addi $sp, $sp, -frame`` instruction (``None`` when
    the procedure has no frame yet); ``epilogues`` are the matching restores.
    ``base_slots`` counts the slots the code generator reserved (the saved
    ``$ra`` plus the widest call-site spill set); the allocator appends its
    own spill slots after them and rewrites the immediates.
    """

    prologue: "object" = None
    epilogues: list = field(default_factory=list)
    base_slots: int = 0
    spill_slots: int = 0

    @property
    def frame_bytes(self) -> int:
        return 4 * (self.base_slots + self.spill_slots)


@dataclass
class Procedure:
    """A procedure: an ordered list of basic blocks; blocks[0] is the entry."""

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    frame: FrameInfo = field(default_factory=FrameInfo)

    def __post_init__(self) -> None:
        self._by_label: dict[str, BasicBlock] = {b.label: b for b in self.blocks}

    # --------------------------------------------------------------- building
    def add_block(self, block: BasicBlock, after: Optional[str] = None) -> BasicBlock:
        if block.label in self._by_label:
            raise ValueError(f"duplicate block label {block.label!r}")
        if after is None:
            self.blocks.append(block)
        else:
            idx = self.blocks.index(self._by_label[after])
            self.blocks.insert(idx + 1, block)
        self._by_label[block.label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def layout_successor(self, label: str) -> Optional[BasicBlock]:
        """The block that follows ``label`` in layout order (fall-through)."""
        idx = self.blocks.index(self._by_label[label])
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1]
        return None

    # ---------------------------------------------------------------- queries
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions()

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def max_register_index(self) -> int:
        best = 31
        for instr in self.instructions():
            for reg in (*instr.defs(), *instr.uses()):
                best = max(best, reg.index)
        return best

    def fresh_label(self, hint: str) -> str:
        """A block label not yet used in this procedure."""
        if hint not in self._by_label:
            return hint
        n = 1
        while f"{hint}.{n}" in self._by_label:
            n += 1
        return f"{hint}.{n}"

    def __str__(self) -> str:
        header = f"proc {self.name}:"
        return "\n".join([header] + [str(b) for b in self.blocks])


@dataclass
class Program:
    """A whole program: procedures plus the data segment."""

    procedures: dict[str, Procedure] = field(default_factory=dict)
    data: DataSegment = field(default_factory=DataSegment)
    entry: str = "main"
    mem_size: int = DEFAULT_MEM_SIZE

    def add(self, proc: Procedure) -> Procedure:
        if proc.name in self.procedures:
            raise ValueError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc
        return proc

    def proc(self, name: str) -> Procedure:
        return self.procedures[name]

    @property
    def main(self) -> Procedure:
        return self.procedures[self.entry]

    def instruction_count(self) -> int:
        return sum(p.instruction_count() for p in self.procedures.values())

    def max_register_index(self) -> int:
        return max(p.max_register_index() for p in self.procedures.values())

    def registers_used(self) -> set[Reg]:
        regs: set[Reg] = set()
        for proc in self.procedures.values():
            for instr in proc.instructions():
                regs.update(instr.defs())
                regs.update(instr.uses())
        return regs

    def invalidate_caches(self) -> None:
        """Drop derived artifacts other layers cached on this program
        (e.g. the translating backend's generated code).  Every pass that
        mutates the IR in place must call this, or stale generated code
        would keep executing the pre-mutation program."""
        self.__dict__.pop("_translation_unit", None)

    def __str__(self) -> str:
        return "\n\n".join(str(p) for p in self.procedures.values())


def clone_program(program: Program) -> Program:
    """A structural deep copy of the IR that *preserves instruction uids*.

    Scheduling mutates the IR in place (boost labels, instruction motion,
    compensation code), so anything that needs the pre-schedule program — the
    functional oracle of the differential checker, a seed for an alternative
    schedule — must snapshot it first.  ``copy.deepcopy`` cannot be used
    (:class:`~repro.isa.registers.Reg` instances are interned) and
    ``Instruction.copy`` deliberately assigns fresh uids; this clone keeps
    uids and origins intact so fault-injection plans keyed on architectural
    identity apply to the clone and the original interchangeably.  The data
    segment is shared — nothing downstream mutates it.
    """
    from dataclasses import replace

    clone = Program(data=program.data, entry=program.entry,
                    mem_size=program.mem_size)
    for proc in program.procedures.values():
        copy = Procedure(proc.name)
        for block in proc.blocks:
            copy.add_block(BasicBlock(
                label=block.label,
                body=[replace(instr) for instr in block.body],
                terminator=(replace(block.terminator)
                            if block.terminator is not None else None),
                exec_count=block.exec_count,
                taken_prob=block.taken_prob,
            ))
        clone.add(copy)
    return clone
