"""compress-like workload: LZW compression over a byte stream.

The shape of SPEC ``compress``: a dictionary hash table probed per input
byte, with hit/miss branches whose outcome depends on the data (Table 1
reports ~82.7% static prediction accuracy).  Output is the code stream
checksum plus the dictionary size.
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
bytes input[1536];
global inlen = 0;
global hash_code[512];
global hash_key[512];
global next_code = 0;
global checksum = 0;

func main() {
    // Initialise single-byte codes 0..255; hash table empty (key 0 = free,
    // keys are stored +1).
    next_code = 256;
    var prefix = input[0];
    var i = 1;
    var len = inlen;
    while (i < len) {
        var c = input[i];
        if ((c + i) & 1) {
            checksum = checksum ^ (c * 9);
        } else {
            checksum = checksum + c;
        }
        var key = prefix * 256 + c + 1;
        var h = (key * 31) & 511;
        var found = 0 - 1;
        while (1) {
            var k = hash_key[h];
            if (k == key) {
                found = hash_code[h];
                break;
            }
            if (k == 0) {
                break;
            }
            h = (h + 1) & 511;
        }
        if (found >= 0) {
            prefix = found;
        } else {
            checksum = checksum + prefix * 3 + 7;
            if (next_code < 4096 && hash_key[h] == 0) {
                hash_key[h] = key;
                hash_code[h] = next_code;
                next_code = next_code + 1;
            }
            prefix = c;
        }
        i = i + 1;
    }
    checksum = checksum + prefix;
    print(checksum);
    print(next_code);
}
"""


def _make_stream(seed: int, length: int) -> bytes:
    """Compressible text: repeated phrases over a small alphabet."""
    rng = random.Random(seed)
    phrases = [b"the ", b"quick ", b"lazy ", b"dog ", b"fox ", b"jumps ",
               b"aaaa", b"abab", b"over "]
    out = bytearray()
    while len(out) < length:
        if rng.random() < 0.35:
            out.append(rng.randrange(32, 127))
        else:
            out.extend(rng.choice(phrases))
    return bytes(out[:length])


def _inputs(seed: int, length: int):
    data = _make_stream(seed, length)
    return {"input": data, "inlen": len(data)}


WORKLOAD = register(Workload(
    name="compress",
    paper_benchmark="compress (SPEC)",
    description="LZW dictionary compression with hash probing",
    source=SOURCE,
    train=_inputs(301, 900),
    eval=_inputs(404, 900),
))
