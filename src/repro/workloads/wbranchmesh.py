"""Fuzz-promoted workload: low-predictability branch mesh.

Born as generator seed 37 under ``GenConfig(size="medium", pred_lo=0.55,
pred_hi=0.78)`` and promoted from the fuzz corpus as the suite's
worst-predicted control flow: ~73% static prediction accuracy on the eval
input, well below the paper's 72–98% Table-1 band floor.  Traces stay
short, boosted work squashes often, and the squashing-vs-recovery models
separate more sharply than on any Table-1 stand-in.  The source is frozen
verbatim; ``python -m repro fuzz --seed-start 37 --count 1 --size medium
--pred-lo 0.55 --pred-hi 0.78`` replays its ancestry.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

SOURCE = """\
global inp0[32];
global arr1[32] = { 44, -10, -20, -5, 69, -37, 46, 77, 35, -30, 36, -26, 67, 40, -8, 17, 70, -22, -36, 71, 83, 75, 47, 82, -7, 76, 13, 4, 82, 1, -38, -27 };
global arr2[32] = { -11, 3, 69, -8, -6, 52, 11, 73, 84, -12, 81, 52, 15, -2, -20, -36, 86, 83, 89, -33, 29, -4, 1, 48, -13, -28, 30, 84, 13, 48, 23, -16 };
global gsum = 0;

func fn0(p0) {
    if (((p0 * 29 + 61) & 255) < 102) {
        gsum = ((((~(p0) >> 1)) + (arr2[(p0) & 31])) % (((p0) & 15) + 4)) & (arr2[(p0) & 31]);
    } else {
    }
    return p0 + (((p0) + (-(p0))) + ((-(p0)) - (p0)));
}

func fn1(p0, p1, p2) {
    if (p0 <= 0) { return 3; }
    return (inp0[(p0) & 31]) + fn1(p0 - 1, inp0[(p0) & 31], -(p0));
}

func main() {
    var acc = 1;
    var v1 = -29;
    var v2 = 16;
    var i3 = 0;
    while (i3 < 17) {
        var v4 = (((~(v1)) ^ (~(acc))) & (v1)) - (arr2[(v1) & 31]);
        for (var i5 = 0; i5 < 10; i5 = i5 + 1) {
            arr2[(((~(v4)) | (v4)) ^ ((~(i3)) ^ (arr1[(i5) & 31]))) & 31] = i3;
            v4 = v4 + arr2[(arr2[(v1) & 31]) & 31];
            var i6 = 0;
            while (i6 < 18) {
                i6 = i6 + 1;
            }
        }
        i3 = i3 + 1;
    }
    if (((v2 * 37 + 229) & 255) < 196) {
        acc = acc;
    } else {
        if (((acc * 29 + 17) & 255) < 171) {
        } else {
        }
    }
    gsum = (((loadw(addr(arr1) + 4 * ((acc) & 31))) - (149)) + ((v2) / (((~(v2)) & 15) + 2))) ^ (((loadw(addr(arr2) + 4 * ((v2) & 31))) + (190)) % (((-28) & 15) + 3));
    for (var i7 = 0; i7 < 16; i7 = i7 + 1) {
        arr1[(((-(i7)) | (-(v2))) + ((-(acc)) & (~(v2)))) & 31] = (((v2 >> 4)) | (~(i7))) * ((-(v1)) ^ (~(acc)));
        arr2[(((~(acc)) - (arr1[(i7) & 31])) | ((v1) + (arr2[(v2) & 31]))) & 31] = ((-(v2) >> 6)) + ((~(v1)) - (i7));
        v1 = 69;
        print(v1 & 1023);
        for (var i8 = 0; i8 < 19; i8 = i8 + 1) {
        }
    }
    acc = (inp0[(v2) & 31]) ^ ((~(v1)) % (((~(v1)) & 15) + 3));
    var v9 = v1;
    storew(addr(inp0) + 4 * ((-(v9)) & 31), -(acc));
    v9 = v9 + inp0[(((110) % (((104) & 15) + 2)) & ((v1) & (arr2[(v2) & 31]))) & 31];
    var v10 = arr2[(v9) & 31];
    storew(addr(arr2) + 4 * (((~(v1)) ^ (loadw(addr(inp0) + 4 * ((v9) & 31)))) & 31), ((~(v9)) + (v2)) & ((~(v2)) / (((~(v10)) & 15) + 7)));
    v10 = v10 + arr2[(((loadw(addr(arr2) + 4 * ((v9) & 31))) & (-82)) & ((-51) & (~(v2)))) & 31];
    var i11 = 0;
    while (i11 < 20) {
        print(v1 & 1023);
        var i12 = 0;
        while (i12 < 13) {
            var i13 = 0;
            while (i13 < 14) {
                v10 = ((loadw(addr(arr2) + 4 * ((acc) & 31))) - ((i13) + (~(i11)))) & (((loadw(addr(arr2) + 4 * ((v9) & 31))) - (i11)) - ((v10) & (~(v10))));
                if (((v9 * 29 + 89) & 255) < 150 || (v9 & 1) != 0) {
                }
                i13 = i13 + 1;
            }
            i12 = i12 + 1;
        }
        i11 = i11 + 1;
    }
    print(acc);
    print(gsum);
}
"""

TRAIN = {"inp0": [9708, 56524, 2, 3, 36968, 41, 52, 12, 49, -39, 49, 23, 35, -8, 1, -1, 44, 39, 50, 7023, 28, 46, 1, -1, 57465, 52, 2, 22, 58, 47, -33, 14]}

EVAL = {"inp0": [7, 73744, 13, 10, 47, 30469, -6, 5903, 13, 6, 6, -42, 7, 14325, 4, 28, 52, 37, 20, -42, 88299, 49, -4, 45, 25, 2, 19, 18, 51, 50168, 4, 16063]}

WORKLOAD = register(Workload(
    name='branchmesh',
    paper_benchmark='(fuzz corpus)',
    description='low-predictability branch mesh from the fuzz corpus',
    source=SOURCE,
    train=TRAIN,
    eval=EVAL,
))
