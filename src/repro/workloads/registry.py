"""Workload registry.

Each workload stands in for one benchmark of Table 1 (three SPEC programs
and four UNIX utilities, all C, all run to completion).  The Minic sources
recreate the *shape* of each program — its control structure, branch
behaviour, and data access patterns — at a size cycle-level simulation in
Python handles comfortably.  Every workload has separate *train* and *eval*
inputs: the branch profile is always collected on a different input than the
one measured (Section 4.3).

Two extra members — ``fuzzalias`` and ``branchmesh`` — were promoted from
the differential fuzz corpus (see ``docs/fuzzing.md``) to stress
store-to-load aliasing and low branch predictability beyond what the
Table-1 stand-ins exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

InputSet = dict[str, Union[list[int], bytes, int]]


@dataclass(frozen=True)
class Workload:
    name: str
    paper_benchmark: str
    description: str
    source: str
    train: InputSet
    eval: InputSet


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def all_workloads() -> list[Workload]:
    """All workloads: Table 1 order, then the fuzz-promoted pair."""
    # Import for side effects: each module registers its workload.
    from repro.workloads import (  # noqa: F401
        wawk, wbranchmesh, wcompress, weqntott, wespresso, wfuzzalias,
        wgrep, wnroff, wxlisp,
    )
    order = ["awk", "compress", "eqntott", "espresso", "grep", "nroff",
             "xlisp", "fuzzalias", "branchmesh"]
    return [_REGISTRY[name] for name in order]


def get(name: str) -> Workload:
    all_workloads()
    return _REGISTRY[name]
