"""nroff-like workload: filling text into fixed-width output lines.

``nroff`` spends its time in character-copy loops with mostly-predictable
branches (Table 1: 96.7%): copy a word, check the output column, break the
line when the next word will not fit, pad short lines.
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
bytes text[4096];
global textlen = 0;
global width = 60;
bytes out[6144];

func main() {
    var col = 0;
    var outpos = 0;
    var olines = 0;
    var i = 0;
    var len = textlen;
    var w = width;
    while (i < len) {
        // Skip input whitespace.
        while (i < len && (text[i] == ' ' || text[i] == '\\n')) {
            i = i + 1;
        }
        if (i >= len) { break; }
        // Measure the next word.
        var start = i;
        while (i < len && text[i] != ' ' && text[i] != '\\n') {
            i = i + 1;
        }
        var wordlen = i - start;
        // Break the line if the word will not fit.
        if (col > 0 && col + 1 + wordlen > w) {
            out[outpos] = '\\n';
            outpos = outpos + 1;
            olines = olines + 1;
            col = 0;
        }
        if (col > 0) {
            out[outpos] = ' ';
            outpos = outpos + 1;
            col = col + 1;
        }
        // Copy the word.
        var k = start;
        while (k < start + wordlen) {
            out[outpos] = text[k];
            outpos = outpos + 1;
            k = k + 1;
        }
        col = col + wordlen;
    }
    if (col > 0) { olines = olines + 1; }
    // Checksum the formatted output.
    var sum = 0;
    var p = 0;
    while (p < outpos) {
        sum = sum + out[p] * ((p & 7) + 1);
        p = p + 1;
    }
    print(olines);
    print(outpos);
    print(sum);
}
"""

_WORDS = ["formatting", "of", "text", "into", "lines", "is", "the", "core",
          "task", "troff", "performs", "and", "word", "wrapping", "keeps",
          "columns", "aligned", "justification", "a", "small", "filler"]


def _inputs(seed: int, words: int):
    rng = random.Random(seed)
    text = " ".join(rng.choice(_WORDS) for _ in range(words)).encode()
    text = text[:4096]
    return {"text": text, "textlen": len(text), "width": 60}


WORKLOAD = register(Workload(
    name="nroff",
    paper_benchmark="nroff (UNIX utility)",
    description="word-wrap line filling with column checks",
    source=SOURCE,
    train=_inputs(33, 420),
    eval=_inputs(44, 420),
))
