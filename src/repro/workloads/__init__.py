"""The seven benchmark workloads of Table 1, plus two fuzz-promoted ones."""

from repro.workloads.registry import InputSet, Workload, all_workloads, get

__all__ = ["InputSet", "Workload", "all_workloads", "get"]
