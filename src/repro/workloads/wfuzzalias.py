"""Fuzz-promoted workload: high-alias loop nest.

Born as generator seed 10 under ``GenConfig(size="medium",
raw_mem_prob=0.85)`` and promoted from the fuzz corpus because it is the
suite's densest store-to-load aliasing stress: 28 raw ``storew``/``loadw``
sites share three word arrays with ``a[i]`` syntax inside an 11-loop nest,
which is exactly the memory-disambiguation edge that limits boosting of
loads and the legality edge of the translating backend's trace-reuse
memoization.  The source is frozen verbatim (regenerating would couple the
benchmark tables to generator internals); ``generate_program(10,
GenConfig(size="medium", raw_mem_prob=0.85))`` replays its ancestry
(``raw_mem_prob`` is a ``GenConfig`` knob, not a CLI flag).
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

SOURCE = """\
global inp0[32];
global arr1[32] = { -36, -12, -12, -38, 23, 10, 61, -33, 69, 89, 40, 30, 13, -16, -22, 83, 10, -28, 1, -9, 68, 35, 34, 79, 77, -18, 72, 27, 38, -37, 72, 13 };
global arr2[32] = { 22, -22, 75, 25, 16, 53, 38, -38, 21, 45, -9, 64, -4, 26, 90, 89, -32, 67, -22, 71, -31, 56, 69, -26, 38, 51, -23, 82, -9, 31, 23, 22 };
global gsum = 0;

func fn0(p0) {
    if (p0 <= 0) { return 3; }
    return (((110) % (((159) & 15) + 7)) + (p0)) + fn0(p0 - 1);
}

func fn1(p0, p1, p2) {
    gsum = (((loadw(addr(inp0) + 4 * ((p1) & 31))) & (170)) + ((p1) & (p0))) + (((arr2[(p0) & 31]) + (p2)) / (((p0) & 15) + 2));
    storew(addr(arr2) + 4 * ((((-(p1)) ^ (-(p0))) + ((-(p0)) + (loadw(addr(inp0) + 4 * ((p2) & 31))))) & 31), ((-25) & (loadw(addr(inp0) + 4 * ((p2) & 31)))) % (((143) & 15) + 6));
    for (var i1 = 0; i1 < 19; i1 = i1 + 1) {
        var i2 = 0;
        while (i2 < 14) {
            storew(addr(arr2) + 4 * ((((61) * (p1)) | (((loadw(addr(inp0) + 4 * ((p0) & 31)) >> 6)) ^ (loadw(addr(arr1) + 4 * ((p2) & 31))))) & 31), ((p0) / (((loadw(addr(arr1) + 4 * ((i2) & 31))) & 15) + 7)) % (((p2) & 15) + 7));
            gsum = gsum + loadw(addr(arr2) + 4 * ((((p1) / (((inp0[(p1) & 31]) & 15) + 1)) - (80)) & 31));
            i2 = i2 + 1;
        }
    }
    return p0 + ((((p1) % (((~(p1)) & 15) + 2) >> 3)) + ((196) & (-(p2))));
}

func main() {
    var acc = 1;
    var v3 = -22;
    var v4 = -21;
    var v5 = -9;
    v4 = (((loadw(addr(arr1) + 4 * ((v3) & 31))) / (((v3) & 15) + 5)) % (((loadw(addr(inp0) + 4 * ((v5) & 31))) & 15) + 2)) - (-51);
    var i6 = 0;
    while (i6 < 8) {
        for (var i7 = 0; i7 < 15; i7 = i7 + 1) {
            for (var i8 = 0; i8 < 6; i8 = i8 + 1) {
                print(v5 & 1023);
                var v9 = (((147 << 3)) - ((103) ^ (~(v3)))) + (((acc) + (i8)) * ((-(acc)) - (loadw(addr(inp0) + 4 * ((i8) & 31)))));
                acc = (((loadw(addr(arr2) + 4 * ((v5) & 31))) % (((i8) & 15) + 6)) ^ ((~(v9)) + (i6))) + (((-(v9)) | (~(v3))) | ((loadw(addr(arr2) + 4 * ((acc) & 31))) | (arr1[(v9) & 31])));
                if (((v5 * 53 + 136) & 255) < 52) {
                }
            }
        }
        i6 = i6 + 1;
    }
    v5 = ~(v5);
    inp0[(acc) & 31] = v4;
    v3 = v3 + loadw(addr(inp0) + 4 * ((((-(v3)) ^ (loadw(addr(arr2) + 4 * ((v3) & 31)))) + ((v4) & (~(v4)))) & 31));
    var i10 = 0;
    while (i10 < 13) {
        var v11 = (v4) ^ (((v4) % (((i10) & 15) + 5)) % (((loadw(addr(inp0) + 4 * ((i10) & 31))) & 15) + 2));
        storew(addr(arr1) + 4 * ((((v3) * (~(acc))) - (v5)) & 31), ((v5) - (loadw(addr(arr1) + 4 * ((acc) & 31)))) % (((92) & 15) + 3));
        v5 = v5 + loadw(addr(arr1) + 4 * ((-(v11)) & 31));
        var i12 = 0;
        while (i12 < 12) {
            for (var i13 = 0; i13 < 8; i13 = i13 + 1) {
                if (((v11 * 29 + 227) & 255) < 24) {
                } else {
                }
            }
            i12 = i12 + 1;
        }
        i10 = i10 + 1;
    }
    var i14 = 0;
    while (i14 < 14) {
        storew(addr(inp0) + 4 * (((((v4 >> 6)) + (loadw(addr(arr1) + 4 * ((v3) & 31)))) - (~(v4))) & 31), ((-(v5)) / (((v4) & 15) + 1)) / (((~(v5)) & 15) + 2));
        acc = acc + inp0[(((loadw(addr(arr1) + 4 * ((v3) & 31))) * (~(i14))) + ((-21) ^ (v4))) & 31];
        storew(addr(arr1) + 4 * ((((~(v5)) & (-50)) + (~(acc))) & 31), (i14) & (arr2[(v3) & 31]));
        gsum = gsum + loadw(addr(arr1) + 4 * ((184) & 31));
        var i15 = 0;
        while (i15 < 14) {
            storew(addr(arr2) + 4 * ((i15) & 31), i14);
            v4 = v4 + loadw(addr(arr2) + 4 * ((((-93) % (((-(v3)) & 15) + 7)) + ((v5) % (((inp0[(acc) & 31]) & 15) + 4))) & 31));
            if (((v3 * 71 + 39) & 255) < 225) {
                var i16 = 0;
                while (i16 < 18) {
                    i16 = i16 + 1;
                }
            }
            i15 = i15 + 1;
        }
        i14 = i14 + 1;
    }
    if (((v3 * 37 + 116) & 255) < 239) {
        var v17 = loadw(addr(inp0) + 4 * ((acc) & 31));
        if (((v3 * 89 + 112) & 255) < 243 && (acc & 1) != 0) {
        }
    } else {
    }
    print(acc);
    print(gsum);
}
"""

TRAIN = {"inp0": [22, 19333, 20, -27, 9, 53, 39, 0, 47, -5, 52, 38416, 29, -12, 32, 31, 17, 60, 11, 16711, 8, 52, -48, 55193, 63560, -22, 8, 13, 32, -16, 49, 12]}

EVAL = {"inp0": [-13, 35, 8, 66933, 52, 21, -45, 87384, 4711, 40, -41, -31, -44, 25, 8, 51, 42, 52, 49, 35, 16, -34, 30, -20, 3, 17, 20, 0, 48, 45, -12, 38967]}

WORKLOAD = register(Workload(
    name='fuzzalias',
    paper_benchmark='(fuzz corpus)',
    description='high-alias loop nest promoted from the fuzz corpus',
    source=SOURCE,
    train=TRAIN,
    eval=EVAL,
))
