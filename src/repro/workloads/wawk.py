"""awk-like workload: record/field scanning with per-field accumulation.

The shape of ``awk '{ s += $2 } END { print s }'``: scan a byte stream,
split it into newline-separated records and space-separated fields, parse
numeric fields, and accumulate statistics.  Character-class branches on
mixed text give the moderate prediction accuracy Table 1 reports for awk
(~82%).
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
bytes text[2048];
global textlen = 0;
global sums[8];
global chk = 0;

func main() {
    var i = 0;
    var field = 0;
    var value = 0;
    var in_number = 0;
    var records = 0;
    var hash = 0;
    var len = textlen;
    while (i < len) {
        var c = text[i];
        if ((c ^ i) & 1) {
            hash = hash * 3 + c;
        } else {
            hash = hash + c * 5;
        }
        if (c == '\\n') {
            if (in_number) {
                sums[field & 7] = sums[field & 7] + value;
            }
            field = 0;
            value = 0;
            in_number = 0;
            records = records + 1;
        } else {
            if (c == ' ') {
                if (in_number) {
                    sums[field & 7] = sums[field & 7] + value;
                    field = field + 1;
                }
                value = 0;
                in_number = 0;
            } else {
                if (c >= '0' && c <= '9') {
                    value = value * 10 + (c - '0');
                    in_number = 1;
                } else {
                    in_number = 0;
                }
            }
        }
        i = i + 1;
    }
    print(records);
    print(hash);
    var f = 0;
    while (f < 8) {
        print(sums[f]);
        f = f + 1;
    }
}
"""


def _make_text(seed: int, records: int) -> bytes:
    rng = random.Random(seed)
    lines = []
    for _ in range(records):
        nfields = rng.randint(1, 5)
        fields = []
        for _ in range(nfields):
            if rng.random() < 0.8:
                fields.append(str(rng.randint(0, 9999)))
            else:
                fields.append(rng.choice(["x", "tag", "#", "na"]))
        lines.append(" ".join(fields))
    text = ("\n".join(lines) + "\n").encode()
    return text


def _inputs(seed: int, records: int):
    text = _make_text(seed, records)
    if len(text) > 2048:
        text = text[:2048]
        text = text[: text.rfind(b"\n") + 1]
    return {"text": text, "textlen": len(text)}


WORKLOAD = register(Workload(
    name="awk",
    paper_benchmark="awk (UNIX utility)",
    description="record/field scanning with numeric accumulation",
    source=SOURCE,
    train=_inputs(101, 70),
    eval=_inputs(202, 70),
))
