"""espresso-like workload: two-level logic cover manipulation on cube
bitsets.

SPEC ``espresso`` minimises boolean covers by intersecting, containing, and
counting cubes represented as bit vectors.  The containment/intersection
branches are data dependent (~75.7% static prediction accuracy in Table 1).
The kernel below performs a single-pass redundancy sweep: a cube is dropped
from the cover when another cube contains it, with a distance-1 merge pass
after.
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
global cover[128];
global ncubes = 0;
global alive[128];

func main() {
    var n = ncubes;
    var i = 0;
    while (i < n) {
        alive[i] = 1;
        i = i + 1;
    }
    // Containment sweep: cube j dies if a live cube i covers it
    // (i | j == i) and i != j.
    i = 0;
    while (i < n) {
        if (alive[i]) {
            var ci = cover[i];
            var j = 0;
            while (j < n) {
                if (j != i && alive[j]) {
                    var cj = cover[j];
                    if ((ci | cj) == ci) {
                        alive[j] = 0;
                    }
                }
                j = j + 1;
            }
        }
        i = i + 1;
    }
    // Distance-1 merge: combine pairs differing in a single literal.
    var merges = 0;
    i = 0;
    while (i < n) {
        if (alive[i]) {
            var j2 = i + 1;
            while (j2 < n) {
                if (alive[j2]) {
                    var diff = cover[i] ^ cover[j2];
                    if (diff != 0 && (diff & (diff - 1)) == 0) {
                        cover[i] = cover[i] | diff;
                        alive[j2] = 0;
                        merges = merges + 1;
                    }
                }
                j2 = j2 + 1;
            }
        }
        i = i + 1;
    }
    // Intersection census: data-dependent overlap tests.
    var inter = 0;
    i = 0;
    while (i < n) {
        var ci2 = cover[i];
        var j3 = i + 1;
        while (j3 < n) {
            var both = ci2 & cover[j3];
            if (both != 0) {
                if (both & 0x555555) { inter = inter + 2; }
                else { inter = inter + 1; }
                if (both & 0xAAAAAA) { inter = inter ^ j3; }
                if ((both >> 3) & 1) { inter = inter + ci2; }
            } else {
                var un = ci2 | cover[j3];
                if (un & 0x00F00F) { inter = inter + 3; }
            }
            j3 = j3 + 1;
        }
        i = i + 1;
    }
    var live = 0;
    var sum = 0;
    i = 0;
    while (i < n) {
        if (alive[i]) {
            live = live + 1;
            sum = sum + (cover[i] & 4095);
        }
        i = i + 1;
    }
    print(live);
    print(merges);
    print(sum);
    print(inter);
}
"""


def _inputs(seed: int, n: int):
    rng = random.Random(seed)
    cubes: list[int] = []
    for _ in range(n):
        if cubes and rng.random() < 0.45:
            # Derive a superset/subset of an existing cube so containment
            # tests actually fire and the alive[] pattern churns.
            base = rng.choice(cubes)
            cube = base
            for _ in range(rng.randint(0, 3)):
                cube |= 1 << rng.randrange(24)
        else:
            cube = 0
            for _ in range(rng.randint(2, 10)):
                cube |= 1 << rng.randrange(24)
        cubes.append(cube)
    return {"cover": cubes, "ncubes": n}


WORKLOAD = register(Workload(
    name="espresso",
    paper_benchmark="espresso (SPEC)",
    description="cube cover containment and distance-1 merge",
    source=SOURCE,
    train=_inputs(5, 52),
    eval=_inputs(19, 52),
))
