"""eqntott-like workload: sorting truth-table rows with a bit-pair
comparison function.

SPEC ``eqntott`` spends its time in ``cmppt``, comparing product terms
two bits at a time inside a sort — data-dependent comparison branches on
random bits are nearly unpredictable, which is why Table 1 shows the lowest
static prediction accuracy of the suite (~72%).
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
global terms[64];
global nterms = 0;
global order[64];
global scratch[64];

func cmppt(a, b) {
    // Compare two product terms (16 two-bit fields packed MSB-first: the
    // field-by-field order equals the word order, so one compare decides).
    // On random terms the outcome is ~50/50, like the original's qsort
    // comparisons.
    if (a < b) { return 0 - 1; }
    if (a > b) { return 1; }
    return 0;
}

func main() {
    var n = nterms;
    var i = 0;
    while (i < n) {
        order[i] = i;
        i = i + 1;
    }
    // Bottom-up mergesort by cmppt (the original uses qsort: comparison
    // outcomes on random terms are close to 50/50).
    var width = 1;
    while (width < n) {
        var lo = 0;
        while (lo < n) {
            var mid = lo + width;
            if (mid > n) { mid = n; }
            var hi = lo + width * 2;
            if (hi > n) { hi = n; }
            var a = lo;
            var b = mid;
            var out = lo;
            while (a < mid && b < hi) {
                // Inlined cmppt: the packed bit-pair order equals the word
                // order (cmppt() below is kept for the final verify pass).
                var ta = terms[order[a]];
                var tb = terms[order[b]];
                if (ta <= tb) {
                    scratch[out] = order[a];
                    a = a + 1;
                } else {
                    scratch[out] = order[b];
                    b = b + 1;
                }
                out = out + 1;
            }
            while (a < mid) {
                scratch[out] = order[a];
                a = a + 1;
                out = out + 1;
            }
            while (b < hi) {
                scratch[out] = order[b];
                b = b + 1;
                out = out + 1;
            }
            var k = lo;
            while (k < hi) {
                order[k] = scratch[k];
                k = k + 1;
            }
            lo = lo + width * 2;
        }
        width = width * 2;
    }
    // Verify sortedness through cmppt and checksum with data-dependent
    // mixing.
    var sum = 0;
    var sorted_ok = 1;
    i = 0;
    while (i < n) {
        var t = terms[order[i]];
        if (i > 0) {
            if (cmppt(terms[order[i - 1]], t) > 0) { sorted_ok = 0; }
        }
        if (t & 1) { sum = sum * 17 + (t & 1023); }
        else { sum = sum + (t & 511) * 3; }
        if ((t >> 1) & 1) { sum = sum ^ i; }
        i = i + 1;
    }
    print(sorted_ok);
    print(sum);
    print(n);
}
"""


def _inputs(seed: int, n: int):
    rng = random.Random(seed)

    def term() -> int:
        # 16 two-bit fields, each 0 or 1: comparing two terms hits equal
        # pairs half the time, so the cmppt loop branches are unpredictable,
        # as in the real eqntott (Table 1: 72.1%).
        value = 0
        for k in range(16):
            value |= rng.randint(0, 1) << (2 * k)
        return value

    return {"terms": [term() for _ in range(n)], "nterms": n}


WORKLOAD = register(Workload(
    name="eqntott",
    paper_benchmark="eqntott (SPEC)",
    description="truth-table term sort with bit-pair comparisons",
    source=SOURCE,
    train=_inputs(11, 44),
    eval=_inputs(23, 44),
))
