"""grep-like workload: substring search over a text buffer.

``grep`` scans text where the first-character test almost never matches, so
its branches are extremely predictable — Table 1 reports 97.9%, the highest
of the suite.  The kernel counts matching lines of a fixed pattern.
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
bytes text[4096];
global textlen = 0;
bytes pattern[16];
global patlen = 0;

func main() {
    var matches = 0;
    var lines = 0;
    var line_hit = 0;
    var i = 0;
    var len = textlen;
    var plen = patlen;
    var first = pattern[0];
    var last = len - plen;
    while (i < len) {
        var c = text[i];
        if (c == '\\n') {
            lines = lines + 1;
            if (line_hit) { matches = matches + 1; }
            line_hit = 0;
        } else {
            if (c == first && i <= last) {
                var j = 1;
                while (j < plen) {
                    if (text[i + j] != pattern[j]) { break; }
                    j = j + 1;
                }
                if (j == plen) { line_hit = 1; }
            }
        }
        i = i + 1;
    }
    print(matches);
    print(lines);
}
"""

_WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "omega", "grep",
          "boost", "trace", "sched", "unix", "kernel"]


def _make_text(seed: int, lines: int, needle: str) -> bytes:
    rng = random.Random(seed)
    out = []
    for _ in range(lines):
        words = [rng.choice(_WORDS) for _ in range(rng.randint(3, 8))]
        if rng.random() < 0.08:
            words.insert(rng.randrange(len(words)), needle)
        out.append(" ".join(words))
    return ("\n".join(out) + "\n").encode()


def _inputs(seed: int, lines: int):
    needle = "boosted"
    text = _make_text(seed, lines, needle)[:4096]
    text = text[: text.rfind(b"\n") + 1]
    return {"text": text, "textlen": len(text),
            "pattern": needle.encode(), "patlen": len(needle)}


WORKLOAD = register(Workload(
    name="grep",
    paper_benchmark="grep (UNIX utility)",
    description="substring search with rare first-character hits",
    source=SOURCE,
    train=_inputs(71, 110),
    eval=_inputs(88, 110),
))
