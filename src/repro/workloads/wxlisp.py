"""xlisp-like workload: a bytecode interpreter dispatch loop.

SPEC ``xlisp`` is an interpreter: its dominant pattern is a fetch/dispatch
loop whose branch behaviour follows the interpreted program (Table 1:
~83.5%).  Here a small stack-machine interpreter runs a Collatz step-count
program over a set of seeds; train and eval use different seed sets.
"""

from __future__ import annotations

import random

from repro.workloads.registry import Workload, register

SOURCE = """
global code[64];
global seeds[24];
global nseeds = 0;
global stack[32];
global env[4];

func run() {
    var pc = 0;
    var sp = 0;
    var fuel = 20000;
    while (fuel > 0) {
        var op = code[pc];
        var arg = code[pc + 1];
        pc = pc + 2;
        if (op == 0) { break; }
        if (op == 1) {               // PUSH imm
            stack[sp] = arg;
            sp = sp + 1;
        } else if (op == 2) {        // ADD
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] + stack[sp];
        } else if (op == 3) {        // SUB
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] - stack[sp];
        } else if (op == 4) {        // MUL
            sp = sp - 1;
            stack[sp - 1] = stack[sp - 1] * stack[sp];
        } else if (op == 7) {        // JNZ abs
            sp = sp - 1;
            if (stack[sp] != 0) { pc = arg; }
        } else if (op == 8) {        // JMP abs
            pc = arg;
        } else if (op == 9) {        // LOAD env slot
            stack[sp] = env[arg];
            sp = sp + 1;
        } else if (op == 10) {       // STORE env slot
            sp = sp - 1;
            env[arg] = stack[sp];
        } else if (op == 12) {       // SHR1
            stack[sp - 1] = stack[sp - 1] >> 1;
        } else if (op == 13) {       // AND1
            stack[sp - 1] = stack[sp - 1] & 1;
        }
        fuel = fuel - 1;
    }
    return env[1];
}

func main() {
    var total = 0;
    var s = 0;
    while (s < nseeds) {
        env[0] = seeds[s];
        env[1] = 0;
        total = total + run();
        s = s + 1;
    }
    print(total);
    print(nseeds);
}
"""

# The interpreted program: Collatz step count of env[0] into env[1].
_HALT, _PUSH, _ADD, _SUB, _MUL = 0, 1, 2, 3, 4
_JNZ, _JMP, _LOAD, _STORE, _SHR1, _AND1 = 7, 8, 9, 10, 12, 13


def _collatz_bytecode() -> list[int]:
    """Word-pair encoding: [op, arg] per instruction; jump args are word
    indices (each instruction occupies two words)."""
    code: list[tuple[int, int]] = []

    def emit(op: int, arg: int = 0) -> int:
        code.append((op, arg))
        return len(code) - 1

    loop = len(code)
    emit(_LOAD, 0)
    emit(_PUSH, 1)
    emit(_SUB)
    jnz_cont = emit(_JNZ)          # patched to cont
    jmp_end = emit(_JMP)           # patched to end
    cont = len(code)
    emit(_LOAD, 0)
    emit(_AND1)
    jnz_odd = emit(_JNZ)           # patched to odd
    emit(_LOAD, 0)                 # even: n >>= 1
    emit(_SHR1)
    emit(_STORE, 0)
    jmp_step = emit(_JMP)          # patched to step
    odd = len(code)
    emit(_LOAD, 0)                 # odd: n = 3n + 1
    emit(_PUSH, 3)
    emit(_MUL)
    emit(_PUSH, 1)
    emit(_ADD)
    emit(_STORE, 0)
    step = len(code)
    emit(_LOAD, 1)                 # steps += 1
    emit(_PUSH, 1)
    emit(_ADD)
    emit(_STORE, 1)
    emit(_JMP, loop * 2)
    end = len(code)
    emit(_HALT)

    code[jnz_cont] = (_JNZ, cont * 2)
    code[jmp_end] = (_JMP, end * 2)
    code[jnz_odd] = (_JNZ, odd * 2)
    code[jmp_step] = (_JMP, step * 2)
    return [w for pair in code for w in pair]


def _inputs(seed: int, nseeds: int):
    rng = random.Random(seed)
    seeds = [rng.randint(3, 97) for _ in range(nseeds)]
    return {"code": _collatz_bytecode(), "seeds": seeds, "nseeds": nseeds}


WORKLOAD = register(Workload(
    name="xlisp",
    paper_benchmark="xlisp (SPEC)",
    description="stack-machine interpreter dispatch loop",
    source=SOURCE,
    train=_inputs(9, 8),
    eval=_inputs(27, 8),
))
