"""Minic front end: lexer, parser, AST, and IR code generation."""

from repro.frontend.codegen import CodegenError, compile_module, compile_source
from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.parser import ParseError, parse

__all__ = [
    "CodegenError", "LexError", "ParseError", "Token", "compile_module",
    "compile_source", "parse", "tokenize",
]
