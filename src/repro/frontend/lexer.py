"""Tokenizer for Minic."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "global", "bytes", "func", "var", "if", "else", "while", "for",
    "return", "break", "continue",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(\\.|[^'\\])')
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=(){}\[\],;])
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


class LexError(ValueError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str   # 'int' | 'name' | 'keyword' | 'string' | 'op' | 'eof'
    text: str
    value: int = 0
    line: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def _unescape(body: str) -> bytes:
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            esc = body[i]
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape \\{esc}")
            out.append(_ESCAPES[esc])
        else:
            out.append(ord(ch))
        i += 1
    return bytes(out)


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos, line = 0, 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(f"line {line}: bad character {source[pos]!r}")
        text = m.group(0)
        if m.lastgroup == "ws":
            line += text.count("\n")
        elif m.lastgroup == "int":
            tokens.append(Token("int", text, int(text, 0), line))
        elif m.lastgroup == "char":
            raw = _unescape(text[1:-1])
            if len(raw) != 1:
                raise LexError(f"line {line}: bad char literal {text}")
            tokens.append(Token("int", text, raw[0], line))
        elif m.lastgroup == "string":
            tokens.append(Token("string", text, 0, line))
        elif m.lastgroup == "name":
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, 0, line))
        else:
            tokens.append(Token("op", text, 0, line))
        pos = m.end()
    tokens.append(Token("eof", "", 0, line))
    return tokens


def string_bytes(token: Token) -> bytes:
    """The byte content of a string literal token (no NUL terminator)."""
    if token.kind != "string":
        raise LexError(f"not a string token: {token}")
    return _unescape(token.text[1:-1])
