"""Minic → IR code generator.

Conventions:

* All scalar locals and expression temporaries live in *virtual* registers;
  register allocation later maps them onto the 24 allocatable physical
  registers (or leaves them virtual under the infinite-register model).
* Calling convention is caller-saves-everything: up to four arguments in
  ``$a0..$a3``, result in ``$v0``; the caller spills every live virtual
  register (named locals + in-flight temporaries) to its frame around a call.
* ``main`` ends in ``halt``; other functions return with ``jr $ra``.

Builtins: ``print(v)``, ``addr(g)``, ``size(g)``, ``loadw(a)``, ``loadb(a)``,
``loadbu(a)``, ``storew(a, v)``, ``storeb(a, v)``.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast
from repro.frontend.parser import parse
from repro.isa import A0, A1, A2, A3, RA, SP, V0, ZERO, Instruction, Opcode, Reg
from repro.program import DataSegment, ProcBuilder, Program
from repro.program.procedure import FrameInfo

_ARG_REGS = (A0, A1, A2, A3)
_BUILTINS = {"print", "addr", "size", "loadw", "loadb", "loadbu",
             "storew", "storeb"}


class CodegenError(ValueError):
    pass


class _FunctionContext:
    """Per-function code generation state."""

    def __init__(self, fn: ast.Function, module: ast.Module,
                 data: DataSegment) -> None:
        self.fn = fn
        self.module = module
        self.data = data
        self.builder = ProcBuilder(fn.name, data=data)
        self.locals: dict[str, Reg] = {}
        self.temps: list[Reg] = []          # in-flight expression temporaries
        self.loop_stack: list[tuple[str, str]] = []  # (continue_l, break_l)
        self.label_n = 0
        self.max_spill = 0
        self.has_calls = self._contains_call(fn.body)
        self.globals = {g.name: g for g in module.globals_}
        self.functions = {f.name for f in module.functions}
        self._prologue_addi: Optional[Instruction] = None
        self._epilogue_addis: list[Instruction] = []

    # --------------------------------------------------------------- helpers
    def _contains_call(self, stmts) -> bool:
        found = False

        def walk_expr(e) -> None:
            nonlocal found
            if isinstance(e, ast.Call) and e.name not in _BUILTINS:
                found = True
            for attr in ("operand", "lhs", "rhs", "index", "value"):
                sub = getattr(e, attr, None)
                if sub is not None and not isinstance(sub, (str, int)):
                    walk_expr(sub)
            for sub in getattr(e, "args", ()):
                walk_expr(sub)

        def walk_stmt(s) -> None:
            for attr in ("init", "cond", "step", "value", "index", "expr"):
                sub = getattr(s, attr, None)
                if sub is None or isinstance(sub, (str, int)):
                    continue
                if isinstance(sub, (ast.VarDecl, ast.Assign, ast.IndexAssign,
                                    ast.ExprStmt)):
                    walk_stmt(sub)
                else:
                    walk_expr(sub)
            for body_attr in ("then", "orelse", "body"):
                for sub in getattr(s, body_attr, ()):
                    walk_stmt(sub)

        for s in stmts:
            walk_stmt(s)
        return found

    def fresh_label(self, hint: str) -> str:
        self.label_n += 1
        return f"{hint}{self.label_n}"

    @property
    def is_main(self) -> bool:
        return self.fn.name == "main"

    # ------------------------------------------------------------ generation
    def generate(self) -> None:
        b = self.builder
        b.label("entry")
        if self.has_calls or not self.is_main:
            self._prologue_addi = b.addi(SP, SP, 0)  # backpatched
            if self.has_calls:
                b.sw(RA, SP, 0)
        for i, param in enumerate(self.fn.params):
            reg = b.vreg()
            self.locals[param] = reg
            b.move(reg, _ARG_REGS[i])
        self.gen_stmts(self.fn.body)
        if self.current_open():
            self.gen_epilogue(None)
        frame = 4 * (1 + self.max_spill)
        if self._prologue_addi is not None:
            self._prologue_addi.imm = -frame
        for addi in self._epilogue_addis:
            addi.imm = frame
        self.builder.proc.frame = FrameInfo(
            prologue=self._prologue_addi,
            epilogues=list(self._epilogue_addis),
            base_slots=(1 + self.max_spill
                        if self._prologue_addi is not None else 0))

    def current_open(self) -> bool:
        cur = self.builder._current
        return cur is None or not cur.is_terminated

    def gen_epilogue(self, value: Optional[Reg]) -> None:
        b = self.builder
        if value is not None:
            b.move(V0, value)
        if self.is_main:
            b.halt()
            return
        if self.has_calls:
            b.lw(RA, SP, 0)
        self._epilogue_addis.append(b.addi(SP, SP, 0))
        b.ret()

    # ------------------------------------------------------------ statements
    def gen_stmts(self, stmts) -> None:
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:  # noqa: C901 - dispatch
        b = self.builder
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self.locals:
                raise CodegenError(f"duplicate local {stmt.name!r}")
            reg = b.vreg()
            self.locals[stmt.name] = reg
            if stmt.init is not None:
                value = self.eval(stmt.init)
                b.move(reg, value)
            else:
                b.li(reg, 0)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            if stmt.name in self.locals:
                b.move(self.locals[stmt.name], value)
            elif stmt.name in self.globals:
                g = self.globals[stmt.name]
                if g.size is not None:
                    raise CodegenError(f"assigning to array {stmt.name!r}")
                addr = b.vreg()
                b.li(addr, self.data.address_of(stmt.name))
                b.sw(value, addr, 0)
            else:
                raise CodegenError(f"unknown variable {stmt.name!r}")
        elif isinstance(stmt, ast.IndexAssign):
            self.gen_index_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value) if stmt.value is not None else None
            self.gen_epilogue(value)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CodegenError("break outside loop")
            b.j(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside loop")
            b.j(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr)
        else:
            raise CodegenError(f"unknown statement {stmt!r}")

    def gen_index_assign(self, stmt: ast.IndexAssign) -> None:
        b = self.builder
        g = self.globals.get(stmt.name)
        if g is None or g.size is None:
            raise CodegenError(f"{stmt.name!r} is not a global array")
        value = self.eval(stmt.value)
        self.temps.append(value)
        addr = self.element_address(g, stmt.index)
        self.temps.pop()
        if g.is_bytes:
            b.sb(value, addr, 0)
        else:
            b.sw(value, addr, 0)

    def element_address(self, g: ast.GlobalDecl, index: ast.Expr) -> Reg:
        b = self.builder
        base_addr = self.data.address_of(g.name)
        if isinstance(index, ast.IntLit):
            scale = 1 if g.is_bytes else 4
            addr = b.vreg()
            b.li(addr, base_addr + scale * index.value)
            return addr
        idx = self.eval(index)
        addr = b.vreg()
        if g.is_bytes:
            b.addi(addr, idx, base_addr)
        else:
            scaled = b.vreg()
            b.sll(scaled, idx, 2)
            b.addi(addr, scaled, base_addr)
        return addr

    def gen_if(self, stmt: ast.If) -> None:
        b = self.builder
        then_l = self.fresh_label("then")
        else_l = self.fresh_label("else") if stmt.orelse else None
        end_l = self.fresh_label("endif")
        self.emit_cond(stmt.cond, then_l, else_l or end_l)
        b.label(then_l)
        self.gen_stmts(stmt.then)
        if stmt.orelse:
            if self.current_open():
                b.j(end_l)
            b.label(else_l)
            self.gen_stmts(stmt.orelse)
        b.label(end_l)

    def gen_while(self, stmt: ast.While) -> None:
        b = self.builder
        head_l = self.fresh_label("while")
        body_l = self.fresh_label("body")
        exit_l = self.fresh_label("endwhile")
        b.label(head_l)
        self.emit_cond(stmt.cond, body_l, exit_l)
        b.label(body_l)
        self.loop_stack.append((head_l, exit_l))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        if self.current_open():
            b.j(head_l)
        b.label(exit_l)

    def gen_for(self, stmt: ast.For) -> None:
        b = self.builder
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        head_l = self.fresh_label("for")
        body_l = self.fresh_label("body")
        step_l = self.fresh_label("step")
        exit_l = self.fresh_label("endfor")
        b.label(head_l)
        if stmt.cond is not None:
            self.emit_cond(stmt.cond, body_l, exit_l)
        b.label(body_l)
        self.loop_stack.append((step_l, exit_l))
        self.gen_stmts(stmt.body)
        self.loop_stack.pop()
        b.label(step_l)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        if self.current_open():
            b.j(head_l)
        b.label(exit_l)

    # ------------------------------------------------------------ conditions
    _INVERT = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=",
               "<=": ">"}

    def emit_cond(self, expr: ast.Expr, tlabel: str, flabel: str) -> None:
        """Branch to ``tlabel``/``flabel`` on the truth of ``expr``.

        The *true* path is emitted as the fall-through: the caller must place
        ``tlabel`` immediately after this call.
        """
        b = self.builder
        if isinstance(expr, ast.Unary) and expr.op == "!":
            mid = self.fresh_label("not")
            self.emit_cond(expr.operand, mid, tlabel)
            b.label(mid)
            b.j(flabel)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.fresh_label("and")
            self.emit_cond(expr.lhs, mid, flabel)
            b.label(mid)
            self.emit_cond(expr.rhs, tlabel, flabel)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.fresh_label("or")
            rhs_l = self.fresh_label("orrhs")
            # lhs true -> tlabel; need branch-if-true, so invert the usual
            # fall-through sense by testing lhs with swapped labels.
            self.emit_cond(ast.Unary("!", expr.lhs), rhs_l, tlabel)
            b.label(rhs_l)
            self.emit_cond(expr.rhs, tlabel, flabel)
            del mid
            return
        if isinstance(expr, ast.Binary) and expr.op in self._INVERT:
            # Branch to flabel when the *inverted* comparison holds.
            self._emit_compare_branch(self._INVERT[expr.op], expr.lhs,
                                      expr.rhs, flabel)
            return
        value = self.eval(expr)
        b.beq(value, ZERO, flabel)

    def _emit_compare_branch(self, op: str, lhs: ast.Expr, rhs: ast.Expr,
                             target: str) -> None:
        """Branch to ``target`` when ``lhs op rhs`` holds."""
        b = self.builder
        a = self.eval(lhs)
        self.temps.append(a)
        c = self.eval(rhs)
        self.temps.pop()
        if op == "==":
            b.beq(a, c, target)
            return
        if op == "!=":
            b.bne(a, c, target)
            return
        t = b.vreg()
        if op == "<":
            b.slt(t, a, c)
            b.bne(t, ZERO, target)
        elif op == ">=":
            b.slt(t, a, c)
            b.beq(t, ZERO, target)
        elif op == ">":
            b.slt(t, c, a)
            b.bne(t, ZERO, target)
        elif op == "<=":
            b.slt(t, c, a)
            b.beq(t, ZERO, target)
        else:
            raise CodegenError(f"bad comparison {op!r}")

    # ----------------------------------------------------------- expressions
    _BINOPS = {
        "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV,
        "%": Opcode.REM, "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
        "<<": Opcode.SLLV, ">>": Opcode.SRAV,
    }

    def eval(self, expr: ast.Expr) -> Reg:  # noqa: C901 - dispatch
        b = self.builder
        if isinstance(expr, ast.IntLit):
            t = b.vreg()
            b.li(t, expr.value)
            return t
        if isinstance(expr, ast.Var):
            if expr.name in self.locals:
                return self.locals[expr.name]
            if expr.name in self.globals:
                g = self.globals[expr.name]
                if g.size is not None:
                    raise CodegenError(
                        f"array {expr.name!r} used without index (use addr())")
                addr = b.vreg()
                b.li(addr, self.data.address_of(expr.name))
                t = b.vreg()
                b.lw(t, addr, 0)
                return t
            raise CodegenError(f"unknown variable {expr.name!r}")
        if isinstance(expr, ast.Unary):
            return self.eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.eval_binary(expr)
        if isinstance(expr, ast.Index):
            g = self.globals.get(expr.name)
            if g is None or g.size is None:
                raise CodegenError(f"{expr.name!r} is not a global array")
            addr = self.element_address(g, expr.index)
            t = b.vreg()
            if g.is_bytes:
                b.lbu(t, addr, 0)
            else:
                b.lw(t, addr, 0)
            return t
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        raise CodegenError(f"unknown expression {expr!r}")

    def eval_unary(self, expr: ast.Unary) -> Reg:
        b = self.builder
        if expr.op == "!":
            # Truth value as 0/1 without control flow: x == 0.
            v = self.eval(expr.operand)
            t = b.vreg()
            b.sltiu(t, v, 1)
            return t
        v = self.eval(expr.operand)
        t = b.vreg()
        if expr.op == "-":
            b.sub(t, ZERO, v)
        elif expr.op == "~":
            b.nor(t, v, ZERO)
        else:
            raise CodegenError(f"bad unary {expr.op!r}")
        return t

    def eval_binary(self, expr: ast.Binary) -> Reg:
        b = self.builder
        if expr.op in ("&&", "||"):
            # Value context: materialise 0/1 through control flow, keeping
            # the short-circuit semantics.
            t = b.vreg()
            true_l = self.fresh_label("bt")
            false_l = self.fresh_label("bf")
            end_l = self.fresh_label("bend")
            self.emit_cond(expr, true_l, false_l)
            b.label(true_l)
            b.li(t, 1)
            b.j(end_l)
            b.label(false_l)
            b.li(t, 0)
            b.label(end_l)
            return t
        a = self.eval(expr.lhs)
        self.temps.append(a)
        c = self.eval(expr.rhs)
        self.temps.pop()
        t = b.vreg()
        if expr.op in self._BINOPS:
            op = self._BINOPS[expr.op]
            if op is Opcode.ADD and isinstance(expr.rhs, ast.IntLit):
                pass  # constant folding happens in the optimizer
            b.emit(Instruction(op, dst=t, srcs=(a, c)))
            return t
        if expr.op == "<":
            b.slt(t, a, c)
        elif expr.op == ">":
            b.slt(t, c, a)
        elif expr.op == "<=":
            b.slt(t, c, a)
            u = b.vreg()
            b.xori(u, t, 1)
            return u
        elif expr.op == ">=":
            b.slt(t, a, c)
            u = b.vreg()
            b.xori(u, t, 1)
            return u
        elif expr.op == "==":
            x = b.vreg()
            b.xor(x, a, c)
            b.sltiu(t, x, 1)
        elif expr.op == "!=":
            x = b.vreg()
            b.xor(x, a, c)
            b.sltu(t, ZERO, x)
        else:
            raise CodegenError(f"bad binary {expr.op!r}")
        return t

    # ----------------------------------------------------------------- calls
    def eval_call(self, expr: ast.Call) -> Reg:
        b = self.builder
        name = expr.name
        if name in _BUILTINS:
            return self.eval_builtin(expr)
        if name not in self.functions:
            raise CodegenError(f"unknown function {name!r}")
        if len(expr.args) > 4:
            raise CodegenError(f"call to {name!r}: more than 4 arguments")

        argv: list[Reg] = []
        for arg in expr.args:
            reg = self.eval(arg)
            argv.append(reg)
            self.temps.append(reg)
        for _ in argv:
            self.temps.pop()

        # Spill every live virtual register: named locals plus in-flight
        # temporaries.  Pure argument temporaries die at the call and are
        # exempt, but an argument that is a named local stays live (e.g.
        # around an enclosing loop) and must be saved like any other.
        named = set(self.locals.values())
        spills: list[Reg] = []
        seen: set[Reg] = {reg for reg in argv if reg not in named}
        for reg in list(self.locals.values()) + self.temps:
            if reg not in seen:
                seen.add(reg)
                spills.append(reg)
        self.max_spill = max(self.max_spill, len(spills))
        for i, reg in enumerate(spills):
            b.sw(reg, SP, 4 * (1 + i))
        for i, reg in enumerate(argv):
            b.move(_ARG_REGS[i], reg)
        b.jal(name)
        b.label(self.fresh_label("ret"))
        result = b.vreg()
        b.move(result, V0)
        for i, reg in enumerate(spills):
            b.lw(reg, SP, 4 * (1 + i))
        return result

    def eval_builtin(self, expr: ast.Call) -> Reg:
        b = self.builder
        name, args = expr.name, expr.args
        if name == "print":
            self._expect_args(expr, 1)
            b.print_(self.eval(args[0]))
            return ZERO
        if name == "addr":
            self._expect_args(expr, 1)
            g = self._global_arg(args[0])
            t = b.vreg()
            b.li(t, self.data.address_of(g.name))
            return t
        if name == "size":
            self._expect_args(expr, 1)
            g = self._global_arg(args[0])
            t = b.vreg()
            nbytes = self.data.size_of(g.name)
            b.li(t, nbytes if g.is_bytes else nbytes // 4)
            return t
        if name in ("loadw", "loadb", "loadbu"):
            self._expect_args(expr, 1)
            addr = self.eval(args[0])
            t = b.vreg()
            {"loadw": b.lw, "loadb": b.lb, "loadbu": b.lbu}[name](t, addr, 0)
            return t
        if name in ("storew", "storeb"):
            self._expect_args(expr, 2)
            addr = self.eval(args[0])
            self.temps.append(addr)
            value = self.eval(args[1])
            self.temps.pop()
            (b.sw if name == "storew" else b.sb)(value, addr, 0)
            return ZERO
        raise CodegenError(f"unknown builtin {name!r}")

    def _expect_args(self, expr: ast.Call, n: int) -> None:
        if len(expr.args) != n:
            raise CodegenError(f"{expr.name} expects {n} argument(s)")

    def _global_arg(self, arg: ast.Expr) -> ast.GlobalDecl:
        if not isinstance(arg, ast.Var) or arg.name not in self.globals:
            raise CodegenError("addr()/size() need a global name")
        return self.globals[arg.name]


def compile_module(module: ast.Module) -> Program:
    """Lower a parsed Minic module to an IR :class:`Program`."""
    program = Program()
    for g in module.globals_:
        if g.size is None:
            init = g.init if isinstance(g.init, int) else 0
            program.data.words(g.name, [init])
        elif g.is_bytes:
            if isinstance(g.init, bytes):
                padded = g.init + b"\0" * (g.size - len(g.init))
                program.data.bytes_(g.name, padded)
            else:
                program.data.zeros(g.name, g.size)
        else:
            values = list(g.init) if isinstance(g.init, list) else []
            values += [0] * (g.size - len(values))
            program.data.words(g.name, values)
    if not any(fn.name == "main" for fn in module.functions):
        raise CodegenError("no main function")
    for fn in module.functions:
        ctx = _FunctionContext(fn, module, program.data)
        ctx.generate()
        program.add(ctx.builder.build())
    return program


def compile_source(source: str) -> Program:
    """Parse and lower Minic source text."""
    return compile_module(parse(source))
