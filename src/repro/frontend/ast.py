"""Abstract syntax tree for Minic, the small C-like workload language.

Minic exists so the benchmark programs (Section 4.3's awk/compress/.../xlisp
equivalents) can be written readably and compiled through the same optimizer
and scheduler path the paper's SUIF-generated assembly went through.

The language: 32-bit signed integers only; global scalars and arrays (word or
byte); functions with up to four parameters; ``if``/``while``/``for``/
``break``/``continue``/``return``; C operator set with short-circuit ``&&``
and ``||``; builtins for raw memory access and output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ----------------------------------------------------------------- expressions


@dataclass
class IntLit:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Unary:
    op: str                 # '-', '!', '~'
    operand: "Expr"


@dataclass
class Binary:
    op: str                 # '+','-','*','/','%','&','|','^','<<','>>',
    lhs: "Expr"             # '<','<=','>','>=','==','!=','&&','||'
    rhs: "Expr"


@dataclass
class Call:
    name: str
    args: list["Expr"]


@dataclass
class Index:
    """``name[index]`` — element load from a global array."""

    name: str
    index: "Expr"


Expr = Union[IntLit, Var, Unary, Binary, Call, Index]

# ------------------------------------------------------------------ statements


@dataclass
class VarDecl:
    name: str
    init: Optional[Expr]


@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class IndexAssign:
    """``name[index] = value`` — element store to a global array."""

    name: str
    index: Expr
    value: Expr


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    orelse: list["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: list["Stmt"]


@dataclass
class Return:
    value: Optional[Expr]


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class ExprStmt:
    expr: Expr


Stmt = Union[VarDecl, Assign, IndexAssign, If, While, For, Return, Break,
             Continue, ExprStmt]

# ------------------------------------------------------------------ top level


@dataclass
class GlobalDecl:
    """A global: scalar (size None), word array, or byte buffer.

    ``init`` may be an int (scalar), a list of ints (word array), or a
    ``bytes`` value (byte array, e.g. from a string literal).
    """

    name: str
    size: Optional[int] = None          # element count for arrays
    is_bytes: bool = False
    init: Union[int, list[int], bytes, None] = None


@dataclass
class Function:
    name: str
    params: list[str]
    body: list[Stmt]


@dataclass
class Module:
    globals_: list[GlobalDecl] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
