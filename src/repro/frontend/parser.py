"""Recursive-descent parser for Minic."""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast
from repro.frontend.lexer import Token, string_bytes, tokenize


class ParseError(ValueError):
    pass


# Binary precedence levels, lowest first.  && and || are handled separately
# (short-circuit) at the lowest levels.
_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- primitives
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"line {self.cur.line}: expected {want!r}, got {self.cur.text!r}")
        return self.advance()

    # -------------------------------------------------------------- top level
    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while not self.check("eof"):
            if self.check("keyword", "global") or self.check("keyword", "bytes"):
                module.globals_.append(self.parse_global())
            elif self.check("keyword", "func"):
                module.functions.append(self.parse_function())
            else:
                raise ParseError(
                    f"line {self.cur.line}: expected declaration, got "
                    f"{self.cur.text!r}")
        return module

    def parse_global(self) -> ast.GlobalDecl:
        is_bytes = self.advance().text == "bytes"
        name = self.expect("name").text
        size: Optional[int] = None
        if self.accept("op", "["):
            size = self.expect("int").value
            self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            if self.check("string"):
                init = string_bytes(self.advance())
                if not is_bytes:
                    raise ParseError(f"string initialiser on non-bytes {name}")
            elif self.accept("op", "{"):
                values = [self._signed_int()]
                while self.accept("op", ","):
                    values.append(self._signed_int())
                self.expect("op", "}")
                init = bytes(v & 0xFF for v in values) if is_bytes else values
            else:
                init = self._signed_int()
        self.expect("op", ";")
        if size is None:
            if isinstance(init, bytes):
                size = len(init)
            elif isinstance(init, list):
                size = len(init)
            elif is_bytes:
                raise ParseError(f"bytes global {name} needs a size or initialiser")
        return ast.GlobalDecl(name=name, size=size, is_bytes=is_bytes, init=init)

    def _signed_int(self) -> int:
        if self.accept("op", "-"):
            return -self.expect("int").value
        return self.expect("int").value

    def parse_function(self) -> ast.Function:
        self.expect("keyword", "func")
        name = self.expect("name").text
        self.expect("op", "(")
        params: list[str] = []
        if not self.check("op", ")"):
            params.append(self.expect("name").text)
            while self.accept("op", ","):
                params.append(self.expect("name").text)
        self.expect("op", ")")
        if len(params) > 4:
            raise ParseError(f"function {name}: more than 4 parameters")
        body = self.parse_block()
        return ast.Function(name=name, params=params, body=body)

    # ------------------------------------------------------------- statements
    def parse_block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        if self.accept("keyword", "var"):
            name = self.expect("name").text
            init = self.parse_expr() if self.accept("op", "=") else None
            self.expect("op", ";")
            return ast.VarDecl(name, init)
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return ast.While(cond, self.parse_block())
        if self.accept("keyword", "for"):
            return self.parse_for()
        if self.accept("keyword", "return"):
            value = None if self.check("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break()
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue()
        stmt = self.parse_simple()
        self.expect("op", ";")
        return stmt

    def parse_if(self) -> ast.If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_block()
        orelse: list[ast.Stmt] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse)

    def parse_for(self) -> ast.For:
        self.expect("op", "(")
        init = None if self.check("op", ";") else self.parse_simple_or_decl()
        self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expr()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_simple()
        self.expect("op", ")")
        return ast.For(init, cond, step, self.parse_block())

    def parse_simple_or_decl(self) -> ast.Stmt:
        if self.accept("keyword", "var"):
            name = self.expect("name").text
            self.expect("op", "=")
            return ast.VarDecl(name, self.parse_expr())
        return self.parse_simple()

    def parse_simple(self) -> ast.Stmt:
        """Assignment, indexed assignment, or expression statement."""
        if self.check("name"):
            name_tok = self.advance()
            if self.accept("op", "="):
                return ast.Assign(name_tok.text, self.parse_expr())
            if self.check("op", "["):
                save = self.pos
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                if self.accept("op", "="):
                    return ast.IndexAssign(name_tok.text, index, self.parse_expr())
                self.pos = save  # it was an expression like xs[i] + 1;
            self.pos -= 1  # un-consume the name, reparse as expression
        return ast.ExprStmt(self.parse_expr())

    # ------------------------------------------------------------ expressions
    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(_LEVELS):
            return self.parse_unary()
        expr = self.parse_expr(level + 1)
        ops = _LEVELS[level]
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            rhs = self.parse_expr(level + 1)
            expr = ast.Binary(op, expr, rhs)
        return expr

    def parse_unary(self) -> ast.Expr:
        if self.cur.kind == "op" and self.cur.text in ("-", "!", "~"):
            op = self.advance().text
            return ast.Unary(op, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        if self.check("int"):
            return ast.IntLit(self.advance().value)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if self.check("name"):
            name = self.advance().text
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.Call(name, args)
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.Index(name, index)
            return ast.Var(name)
        raise ParseError(
            f"line {self.cur.line}: expected expression, got {self.cur.text!r}")


def parse(source: str) -> ast.Module:
    return Parser(source).parse_module()
