"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — compile a Minic source file and print the scheduled
  program (cycle rows, boost labels, recovery code);
* ``run FILE`` — compile and simulate, printing the program output and the
  cycle statistics;
* ``bench [WORKLOAD ...]`` — regenerate the paper's tables and figures;
* ``verify`` — fault-injection differential verification of the boosting
  machinery (see ``docs/fault-injection.md``);
* ``fuzz`` — generative differential fuzzing: seeded Minic programs through
  the cross-backend × cross-machine oracle, with automatic divergence
  reduction into a triage corpus (see ``docs/fuzzing.md``);
* ``workloads`` — list the Table-1 workload suite;
* ``models`` — list the boosting hardware models and their parameters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.frontend import CodegenError, LexError, ParseError
from repro.harness.cache import CODE_VERSION, CompileCache
from repro.hw.backend import BACKENDS
from repro.harness.experiments import BENCH_CONFIG_KEYS, Lab
from repro.harness.fsutil import atomic_write_json
from repro.harness.pipeline import CompileConfig, compile_minic
from repro.harness.report import bench_json, render_all, render_stats
from repro.harness.resilience import (
    CampaignInterrupted, ChaosConfig, Journal, JournalError,
    SupervisionPolicy, graceful_signals,
)
from repro.sched.boostmodel import ALL_MODELS, BY_NAME
from repro.sched.machine import SCALAR, SUPERSCALAR
from repro.workloads import all_workloads


# ------------------------------------------------------- argument validation
# Validators run at parse time so a bad value dies with exit code 2 and a
# one-line message naming the flag — not a traceback (or worse, a silently
# absurd campaign) minutes into a run.

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be at least 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be at least 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}") from None
    if not value > 0 or value != value:  # rejects 0, negatives, and NaN
        raise argparse.ArgumentTypeError(
            f"must be greater than 0, got {text}")
    return value


def _build_config(args: argparse.Namespace) -> CompileConfig:
    machine = SCALAR if args.machine == "scalar" else SUPERSCALAR
    model = BY_NAME[args.model]
    return CompileConfig(
        machine=machine,
        model=model,
        scheduler=args.scheduler,
        regalloc=args.regalloc,
        unroll=args.unroll,
    )


def _load_inputs(spec: Optional[str]) -> Optional[dict]:
    """Inputs come as JSON: {"name": [ints] | int | "bytes-as-string"}."""
    if spec is None:
        return None
    raw = json.loads(spec)
    return {k: (v.encode() if isinstance(v, str) else v)
            for k, v in raw.items()}


def _read_source(path: str) -> str:
    """Read a source file, closing the handle even on a decode error."""
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _source_or_exit(path: str) -> Optional[str]:
    try:
        return _read_source(path)
    except OSError as err:
        reason = err.strerror or str(err)
        print(f"repro: cannot read {path}: {reason}", file=sys.stderr)
        return None


def _compile_or_exit(source: str, path: str, config: CompileConfig, train):
    """Compile, reporting Minic front-end errors as a one-line message
    (matching the missing-file convention) instead of a traceback."""
    try:
        return compile_minic(source, config, train)
    except (LexError, ParseError, CodegenError) as err:
        print(f"repro: {path}: {err}", file=sys.stderr)
        return None


def _make_cache(args: argparse.Namespace) -> Optional[CompileCache]:
    if args.no_cache:
        return None
    return CompileCache(args.cache_dir)


#: fallback wall-clock timeout when --chaos is given without --timeout —
#: chaos hangs workers, so *something* has to reap them
CHAOS_DEFAULT_TIMEOUT = 60.0


def _make_policy(args: argparse.Namespace) -> Optional[SupervisionPolicy]:
    """A supervision policy when any resilience knob was turned, else None
    (plain deterministic execution, exactly as before)."""
    if args.timeout is None and args.retries is None and args.chaos is None:
        return None
    timeout = args.timeout
    if timeout is None and args.chaos is not None:
        timeout = CHAOS_DEFAULT_TIMEOUT
    retries = args.retries if args.retries is not None else 2
    return SupervisionPolicy(timeout=timeout, retries=retries,
                             backoff=args.backoff,
                             seed=args.chaos if args.chaos is not None else 0)


def _make_chaos(args: argparse.Namespace,
                policy: Optional[SupervisionPolicy]) -> Optional[ChaosConfig]:
    if args.chaos is None:
        return None
    # Never inject more consecutive faults than the retry budget allows, or
    # the self-test could not converge to clean output.
    return ChaosConfig(seed=args.chaos, max_faults=min(2, policy.retries))


def _open_journal(args: argparse.Namespace, command: str, fingerprint: str,
                  facets: Optional[dict] = None) -> Optional[Journal]:
    """The campaign journal when --journal/--resume asked for one.

    Raises :class:`JournalError` when resuming against a journal written by
    a different campaign (workloads/models/seeds changed) — the error names
    the facet(s) that diverged.
    """
    if not (args.resume or args.journal):
        return None
    path = args.journal or f".repro-{command}.journal"
    return Journal(path, fingerprint, resume=args.resume, facets=facets)


def _campaign_dir(args: argparse.Namespace, command: str) -> str:
    """Where a sharded campaign keeps its per-shard journals and leases."""
    return (args.journal or f".repro-{command}.journal") + ".shards"


def _make_shard_policies(args: argparse.Namespace):
    """(task policy, shard-restart policy, shard chaos) for ``--shards``.

    In sharded mode ``--chaos`` means *shard-kill* chaos: seeded SIGKILLs
    of whole shard processes (the worker-level kill/hang/corrupt chaos of
    the flat mode stays off — the convergence argument is per-layer).  The
    shard-restart policy reuses the per-task :class:`SupervisionPolicy`
    one level up: same retry budget, same exponential backoff + seeded
    jitter.
    """
    from repro.harness.coordinator import ShardChaosConfig

    task_policy = None
    if args.timeout is not None or args.retries is not None:
        task_policy = SupervisionPolicy(
            timeout=args.timeout,
            retries=args.retries if args.retries is not None else 2,
            backoff=args.backoff)
    retries = args.retries if args.retries is not None else 2
    shard_policy = SupervisionPolicy(
        retries=retries, backoff=args.backoff,
        seed=args.chaos if args.chaos is not None else 0)
    shard_chaos = None
    if args.chaos is not None:
        # Never kill a shard more times than its retry budget allows, or
        # the chaos self-test could not converge to clean output.
        shard_chaos = ShardChaosConfig(
            seed=args.chaos, max_shard_faults=min(2, retries))
    return task_policy, shard_policy, shard_chaos


def _shard_summary(command: str, report) -> None:
    """One stderr line of shard provenance counters (never on stdout —
    steal/restart counts are timing-dependent, reports must diff clean)."""
    s = report.stats
    print(f"{command}: shards={s.shards} restarts={s.restarts} "
          f"chaos-kills={s.chaos_kills} steals={s.steals} "
          f"stolen={s.stolen_tasks} salvaged={s.salvaged_tasks} "
          f"resumed={s.resumed_tasks} failed={s.failed_tasks}",
          file=sys.stderr)


def _resume_hint(args: argparse.Namespace,
                 journal: Optional[Journal]) -> str:
    if journal is None and getattr(args, "shards", 1) <= 1:
        return ""
    hint = "; resume with --resume"
    if getattr(args, "shards", 1) > 1:
        hint += f" --shards {args.shards}"
    if args.journal:
        hint += f" --journal {args.journal}"
    return hint


def cmd_compile(args: argparse.Namespace) -> int:
    source = _source_or_exit(args.file)
    if source is None:
        return 2
    config = _build_config(args)
    cp = _compile_or_exit(source, args.file, config, _load_inputs(args.train))
    if cp is None:
        return 2
    print(f"# {config.describe()}")
    if cp.stats is not None:
        print(f"# traces={cp.stats.traces} boosted={cp.stats.boosted} "
              f"duplicates={cp.stats.duplicates} "
              f"compensation-blocks={cp.stats.split_blocks}")
    print(cp.sched.dump())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _source_or_exit(args.file)
    if source is None:
        return 2
    config = _build_config(args)
    train = _load_inputs(args.train)
    inputs = _load_inputs(args.input) or train
    cp = _compile_or_exit(source, args.file, config, train)
    if cp is None:
        return 2
    run_kwargs = {}
    recorder = None
    if args.stats:
        from repro.obs.stats import SimStats
        run_kwargs["stats"] = SimStats()
    if args.trace_out:
        from repro.obs.trace import TraceRecorder
        recorder = TraceRecorder(capacity=args.trace_capacity)
        run_kwargs["trace"] = recorder
    result = cp.run(inputs, **run_kwargs)
    reference = cp.run_functional(inputs)
    status = "OK" if result.output == reference.output else "MISMATCH"
    for value in result.output:
        print(value)
    print(f"# [{config.describe()}] cycles={result.cycle_count:,} "
          f"instructions={result.instr_count:,} ipc={result.ipc:.3f} "
          f"branches={result.branch_count:,} "
          f"pred-acc={result.prediction_accuracy * 100:.1f}% "
          f"oracle={status}", file=sys.stderr)
    if args.stats and result.sim_stats is not None:
        st = result.sim_stats
        print(f"# [stats] boosted={st.boosted_executed:,} "
              f"squashed={st.boosted_squashed:,} "
              f"squash-rate={st.squash_rate * 100:.1f}% "
              f"recoveries={st.recovery_invocations:,} "
              f"interlock-stalls={st.interlock_stall_cycles:,} "
              f"slot-occupancy={st.issue_slot_occupancy * 100:.1f}%",
              file=sys.stderr)
        if st.translated_blocks:
            print(f"# [translate] blocks={st.translated_blocks:,} "
                  f"superblocks={st.superblocks_chained:,} "
                  f"trace-hits={st.trace_hits:,} "
                  f"trace-misses={st.trace_misses:,} "
                  f"invalidations={st.trace_invalidations:,}",
                  file=sys.stderr)
        if cp.stats is not None:
            sc = cp.stats
            print(f"# [sched] traces={sc.traces} "
                  f"motions={sc.motions_accepted}/{sc.motions_attempted} "
                  f"boosted={sc.boosted} duplicates={sc.duplicates} "
                  f"recovery-blocks={sc.recovery_blocks}", file=sys.stderr)
    if recorder is not None:
        recorder.write(args.trace_out)
        note = (f" ({recorder.dropped:,} events dropped; raise "
                f"--trace-capacity)" if recorder.dropped else "")
        print(f"# wrote {len(recorder.events())} trace events to "
              f"{args.trace_out}{note}", file=sys.stderr)
    return 0 if status == "OK" else 1


def cmd_bench(args: argparse.Namespace) -> int:
    workloads = all_workloads()
    if args.workloads:
        known = {w.name for w in workloads}
        unknown = set(args.workloads) - known
        if unknown:
            print(f"unknown workloads: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        workloads = [w for w in workloads if w.name in args.workloads]
    if args.sabotage and args.sabotage not in {w.name for w in workloads}:
        print(f"unknown sabotage workload: {args.sabotage}", file=sys.stderr)
        return 2
    facets = dict(command="bench", code_version=CODE_VERSION,
                  workloads=[w.name for w in workloads],
                  sabotage=args.sabotage, configs=BENCH_CONFIG_KEYS,
                  stats=args.stats)
    fingerprint = Journal.make_fingerprint(**facets)
    sharded = args.shards > 1
    policy = _make_policy(args) if not sharded else None
    chaos = _make_chaos(args, policy) if not sharded else None
    journal = None
    if not sharded:
        try:
            journal = _open_journal(args, "bench", fingerprint, facets)
        except JournalError as err:
            print(f"repro bench: {err}", file=sys.stderr)
            return 2
    t0 = time.time()
    lab = Lab(workloads, sabotage=args.sabotage, cache=_make_cache(args),
              collect_stats=args.stats)
    clean_text = None
    try:
        with graceful_signals():
            if args.chaos is not None:
                # Chaos self-test: a clean serial run is the oracle the
                # supervised chaotic run must byte-match (it also warms the
                # compile cache, making the chaotic run cheap).
                clean = Lab(workloads, sabotage=args.sabotage,
                            cache=_make_cache(args),
                            collect_stats=args.stats)
                clean.populate(jobs=1)
                clean_text = render_all(clean)
            if sharded:
                task_policy, shard_policy, shard_chaos = \
                    _make_shard_policies(args)
                lab.populate_sharded(
                    args.shards, _campaign_dir(args, "bench"), fingerprint,
                    facets=facets, jobs=args.jobs, policy=task_policy,
                    shard_policy=shard_policy, shard_chaos=shard_chaos,
                    resume=args.resume,
                    progress=lambda m: print(f"bench: {m}",
                                             file=sys.stderr, flush=True))
            elif args.jobs > 1 or policy is not None or journal is not None:
                lab.populate(args.jobs, policy=policy, chaos=chaos,
                             journal=journal)
            text = render_all(lab)
    except JournalError as err:
        print(f"repro bench: {err}", file=sys.stderr)
        return 2
    except CampaignInterrupted as intr:
        print(f"bench: interrupted — {intr.completed}/{intr.total} cells "
              f"finished{_resume_hint(args, journal)}", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    if lab.shard_report is not None:
        _shard_summary("bench", lab.shard_report)
    print(text)
    if args.stats:
        # Printed after (not inside) render_all so the chaos self-test's
        # byte-comparison of the core report is unaffected.
        print(render_stats(lab))
    # Timing is nondeterministic — keep it off stdout so reports diff clean.
    print(f"[{time.time() - t0:.0f}s of simulation]", file=sys.stderr)
    if args.json:
        atomic_write_json(args.json, bench_json(lab))
        print(f"wrote {args.json}", file=sys.stderr)
    if args.write_experiments:
        from repro.harness.report import write_experiments_md
        write_experiments_md(lab, args.write_experiments)
        print(f"wrote {args.write_experiments}", file=sys.stderr)
    exit_code = 0
    if clean_text is not None:
        if text == clean_text:
            print("bench: chaos self-test PASSED — supervised run "
                  "byte-identical to the clean run", file=sys.stderr)
        else:
            print("bench: chaos self-test FAILED — supervised run diverged "
                  "from the clean run", file=sys.stderr)
            exit_code = 1
    if lab.errors:
        print(f"bench: {len(lab.errors)} cell(s) failed — see the error "
              "summary above", file=sys.stderr)
        exit_code = 1
    return exit_code


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import VerifyCampaign, run_selftest

    def progress(msg: str) -> None:
        print(msg, file=sys.stderr, flush=True)

    exit_code = 0
    if not args.no_selftest:
        selftest = run_selftest()
        print(selftest.format())
        print()
        if not selftest.caught:
            return 2

    if args.seed is not None:
        seeds, seed_start = 1, args.seed
    else:
        seeds, seed_start = args.seeds, args.seed_start

    def make_campaign() -> VerifyCampaign:
        return VerifyCampaign(
            workload_names=args.workloads or None,
            model_keys=args.models or None,
            seeds=seeds, seed_start=seed_start, progress=progress,
            cache=_make_cache(args))

    try:
        campaign = make_campaign()
    except ValueError as err:
        print(f"repro verify: {err}", file=sys.stderr)
        return 2
    facets = dict(command="verify", code_version=CODE_VERSION,
                  workloads=[w.name for w in campaign.workloads],
                  models=campaign.model_keys, seeds=seeds,
                  seed_start=seed_start)
    fingerprint = Journal.make_fingerprint(**facets)
    sharded = args.shards > 1
    policy = _make_policy(args) if not sharded else None
    chaos = _make_chaos(args, policy) if not sharded else None
    journal = None
    if not sharded:
        try:
            journal = _open_journal(args, "verify", fingerprint, facets)
        except JournalError as err:
            print(f"repro verify: {err}", file=sys.stderr)
            return 2
    clean_text = None
    try:
        with graceful_signals():
            if args.chaos is not None:
                # Chaos self-test oracle: the same campaign, clean + serial.
                clean_text = make_campaign().run(jobs=1).format()
            if sharded:
                task_policy, shard_policy, shard_chaos = \
                    _make_shard_policies(args)
                summary = campaign.run_sharded(
                    args.shards, _campaign_dir(args, "verify"), fingerprint,
                    facets=facets, jobs=args.jobs, policy=task_policy,
                    shard_policy=shard_policy, shard_chaos=shard_chaos,
                    resume=args.resume)
            else:
                summary = campaign.run(jobs=args.jobs, policy=policy,
                                       chaos=chaos, journal=journal)
    except JournalError as err:
        print(f"repro verify: {err}", file=sys.stderr)
        return 2
    except CampaignInterrupted as intr:
        print(f"verify: interrupted — {intr.completed}/{intr.total} buckets "
              f"finished{_resume_hint(args, journal)}", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    if campaign.shard_report is not None:
        _shard_summary("verify", campaign.shard_report)
    text = summary.format()
    print(text)
    if not summary.ok:
        exit_code = 1
    if clean_text is not None:
        if text == clean_text:
            print("verify: chaos self-test PASSED — supervised run "
                  "byte-identical to the clean run", file=sys.stderr)
        else:
            print("verify: chaos self-test FAILED — supervised run diverged "
                  "from the clean run", file=sys.stderr)
            exit_code = 1
    return exit_code


def cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.stats import STATS_SCHEMA
    from repro.verify.fuzz import FuzzCampaign, GenConfig

    def progress(msg: str) -> None:
        print(msg, file=sys.stderr, flush=True)

    config = GenConfig(size=args.size, pred_lo=args.pred_lo,
                       pred_hi=args.pred_hi)
    try:
        campaign = FuzzCampaign(
            count=args.count, seed_start=args.seed_start, config=config,
            model_keys=args.models or None, backends=args.backends or None,
            plans=args.plans, sabotage=args.sabotage,
            dynamic_variants=args.dynamic_variants or None,
            progress=progress)
    except ValueError as err:
        print(f"repro fuzz: {err}", file=sys.stderr)
        return 2
    facets = dict(command="fuzz", code_version=CODE_VERSION,
                  **campaign.facets())
    fingerprint = Journal.make_fingerprint(**facets)
    sharded = args.shards > 1
    policy = _make_policy(args) if not sharded else None
    chaos = _make_chaos(args, policy) if not sharded else None
    journal = None
    if not sharded:
        try:
            journal = _open_journal(args, "fuzz", fingerprint, facets)
        except JournalError as err:
            print(f"repro fuzz: {err}", file=sys.stderr)
            return 2
    clean_text = None
    try:
        with graceful_signals():
            if args.chaos is not None:
                # Chaos self-test oracle: the same campaign, clean + serial.
                clean_campaign = FuzzCampaign(
                    count=args.count, seed_start=args.seed_start,
                    config=config, model_keys=args.models or None,
                    backends=args.backends or None, plans=args.plans,
                    sabotage=args.sabotage,
                    dynamic_variants=args.dynamic_variants or None)
                clean_text = clean_campaign.run(jobs=1).format()
            if sharded:
                task_policy, shard_policy, shard_chaos = \
                    _make_shard_policies(args)
                summary = campaign.run_sharded(
                    args.shards, _campaign_dir(args, "fuzz"), fingerprint,
                    facets=facets, jobs=args.jobs, policy=task_policy,
                    shard_policy=shard_policy, shard_chaos=shard_chaos,
                    resume=args.resume)
            else:
                summary = campaign.run(jobs=args.jobs, policy=policy,
                                       chaos=chaos, journal=journal)
    except JournalError as err:
        print(f"repro fuzz: {err}", file=sys.stderr)
        return 2
    except CampaignInterrupted as intr:
        print(f"fuzz: interrupted — {intr.completed}/{intr.total} programs "
              f"finished{_resume_hint(args, journal)}", file=sys.stderr)
        return 130
    finally:
        if journal is not None:
            journal.close()
    if campaign.shard_report is not None:
        _shard_summary("fuzz", campaign.shard_report)
    # The chaos comparison uses the pre-triage text: reduction happens once,
    # in the parent, after the merge — it is not part of what parallelism
    # must reproduce byte-for-byte.
    text = summary.format()
    campaign.finalize(summary, triage_dir=Path(args.triage_dir),
                      reduce=not args.no_reduce)
    print(summary.format())
    exit_code = 0 if summary.ok else 1
    if args.json:
        stats = summary.stats()
        atomic_write_json(args.json, {
            "schema": "repro-fuzz/1",
            "facets": facets,
            "stats": {"schema": STATS_SCHEMA, "fuzz": stats.snapshot()},
            "divergences": [{
                "program": d.program, "seed": d.seed,
                "signature": d.signature, "plan": d.plan_text,
                "repro": d.repro_cmd,
                "reduced_lines": (len(d.reduced_source.splitlines())
                                  if d.reduced_source else None),
            } for d in summary.divergences],
            "triage": [{
                "signature": t.signature, "bucket": t.bucket,
                "occurrences": t.occurrences,
                "reduced_lines": t.reduced_lines, "note": t.note,
            } for t in summary.triage],
        })
        print(f"wrote {args.json}", file=sys.stderr)
    if clean_text is not None:
        if text == clean_text:
            print("fuzz: chaos self-test PASSED — supervised run "
                  "byte-identical to the clean run", file=sys.stderr)
        else:
            print("fuzz: chaos self-test FAILED — supervised run diverged "
                  "from the clean run", file=sys.stderr)
            exit_code = 1
    return exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.daemon import CampaignService, ServiceChaosConfig

    chaos = None
    if args.chaos is not None:
        retries = args.retries if args.retries is not None else 2
        # Never kill a runner more times than its retry budget allows, or
        # the chaos self-test could not converge to clean reports.
        chaos = ServiceChaosConfig(seed=args.chaos,
                                   max_faults=min(2, retries))
    runtime = {"jobs": args.jobs, "timeout": args.timeout,
               "retries": args.retries, "backoff": args.backoff,
               "cache_dir": args.cache_dir, "no_cache": args.no_cache}
    service = CampaignService(
        args.socket, args.state_dir, queue_bound=args.queue_bound,
        runtime=runtime, chaos=chaos, resume=args.resume,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown)
    return asyncio.run(service.run())


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, submit

    try:
        params = json.loads(args.params)
    except ValueError as err:
        print(f"repro submit: --params is not valid JSON: {err}",
              file=sys.stderr)
        return 2
    try:
        accepted, result = submit(args.socket, args.kind, params,
                                  deadline=args.deadline,
                                  wait=not args.detach)
    except ServiceError as err:
        print(f"repro submit: {err}", file=sys.stderr)
        return 2
    if accepted.get("event") != "accepted":
        print(f"repro submit: {accepted.get('event', 'rejected')} "
              f"({accepted.get('reason', '?')}): "
              f"{accepted.get('message', '')}", file=sys.stderr)
        return 3
    print(f"submit: accepted {accepted['job']} "
          f"(queued={accepted.get('queued')})", file=sys.stderr)
    if args.detach:
        print(accepted["job"])
        return 0
    if result is None:
        print("repro submit: the service went away before the job "
              "finished; poll with `repro status`", file=sys.stderr)
        return 2
    if result.get("text"):
        print(result["text"])
    state = result.get("state")
    print(f"submit: {accepted['job']} {state} "
          f"(attempts={result.get('attempts')})", file=sys.stderr)
    return 0 if state == "done" else 1


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, status

    try:
        reply = status(args.socket, job=args.job)
    except ServiceError as err:
        print(f"repro status: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    if reply.get("event") == "error":
        print(f"repro status: {reply.get('message')}", file=sys.stderr)
        return 2
    if args.job is not None:
        if reply.get("text"):
            print(reply["text"])
        print(f"status: {args.job} {reply.get('state')} "
              f"(attempts={reply.get('attempts')})", file=sys.stderr)
        return 0
    print(f"{'id':12s} {'kind':8s} {'state':10s} attempts")
    for job in reply.get("jobs", []):
        print(f"{job['id']:12s} {job['kind']:8s} {job['state']:10s} "
              f"{job['attempts']:>8}")
    stats = reply.get("stats", {})
    open_cells = reply.get("breaker_open") or []
    print(f"status: admitted={stats.get('admitted')} "
          f"rejected={stats.get('rejected')} "
          f"completed={stats.get('completed')} "
          f"failed={stats.get('failed')} "
          f"deadline-expired={stats.get('deadline_expired')} "
          f"breaker-open=[{','.join(open_cells)}]"
          + (" draining" if reply.get("draining") else ""),
          file=sys.stderr)
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, drain

    try:
        reply = drain(args.socket)
    except ServiceError as err:
        print(f"repro drain: {err}", file=sys.stderr)
        return 2
    stats = reply.get("stats", {})
    print(f"drain: admitted={stats.get('admitted')} "
          f"rejected={stats.get('rejected')} "
          f"completed={stats.get('completed')} "
          f"failed={stats.get('failed')} "
          f"deadline-expired={stats.get('deadline_expired')}")
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'stands in for':22s} description")
    for w in all_workloads():
        print(f"{w.name:10s} {w.paper_benchmark:22s} {w.description}")
    return 0


def cmd_models(_args: argparse.Namespace) -> int:
    print(f"{'model':10s} {'max level':>9s} {'stores':>7s} "
          f"{'multi-file':>10s} {'squash-only':>11s}")
    for m in ALL_MODELS:
        print(f"{m.name:10s} {m.max_level:>9d} "
              f"{'yes' if m.boost_stores else 'no':>7s} "
              f"{'yes' if m.multi_shadow_files else 'no':>10s} "
              f"{'yes' if m.squash_only else 'no':>11s}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Boosting (ASPLOS'92) reproduction: compile, simulate, "
                    "and benchmark.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compile_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="Minic source file")
        p.add_argument("--machine", choices=["scalar", "superscalar"],
                       default="superscalar")
        p.add_argument("--model", choices=sorted(BY_NAME), default="MinBoost3")
        p.add_argument("--scheduler", choices=["bb", "global"],
                       default="global")
        p.add_argument("--regalloc", choices=["round_robin", "infinite"],
                       default="round_robin")
        p.add_argument("--unroll", type=int, default=1)
        p.add_argument("--train", help="JSON training inputs "
                       "(profile source)", default=None)

    def add_backend_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=BACKENDS, default=None,
                       help="simulator execution engine (default: "
                            "$REPRO_SIM_BACKEND, or 'translate'): "
                            "'translate' runs generated superblock code "
                            "with trace-reuse memoization, 'interp' the "
                            "pre-decoded fast interpreters, 'reference' "
                            "the readable reference interpreters")

    p = sub.add_parser("compile", help="print the scheduled program")
    add_compile_opts(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and simulate")
    add_compile_opts(p)
    p.add_argument("--input", help="JSON evaluation inputs (defaults to "
                   "--train)", default=None)
    p.add_argument("--stats", action="store_true",
                   help="collect paper-metrics counters (boosting, squashes, "
                        "recovery, slot occupancy) and print a summary")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write a Chrome trace-event JSON cycle trace "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--trace-capacity", type=int, default=200_000,
                   metavar="N",
                   help="trace ring-buffer capacity in events; the oldest "
                        "events are dropped beyond this (default: 200000)")
    add_backend_opt(p)
    p.set_defaults(fn=cmd_run)

    def add_parallel_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker processes (default: 1 = in-process; "
                            "reports are byte-identical at any N)")
        p.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="compile-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-boost)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk compile cache")
        p.add_argument("--timeout", type=_positive_float, default=None,
                       metavar="SECS",
                       help="per-task wall-clock timeout: hung workers are "
                            "killed, replaced, and the task retried "
                            "(default: none)")
        p.add_argument("--retries", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="extra attempts for a timed-out/killed/failed "
                            "task, with exponential backoff + seeded jitter "
                            "(default: 2 once supervision is active)")
        p.add_argument("--backoff", type=float, default=0.5, metavar="SECS",
                       help="base retry backoff, doubling per attempt "
                            "(default: 0.5)")
        p.add_argument("--journal", metavar="PATH", default=None,
                       help="crash-safe checkpoint journal; completed tasks "
                            "are durably recorded as the campaign runs "
                            "(default with --resume: .repro-<cmd>.journal)")
        p.add_argument("--resume", action="store_true",
                       help="skip tasks already in the journal; the resumed "
                            "output is byte-identical to an uninterrupted "
                            "run")
        p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="chaos self-test: randomly kill/hang/corrupt "
                            "supervised workers (seeded) and assert the "
                            "output still matches a clean run; with "
                            "--shards, SIGKILL whole shard processes "
                            "instead")
        p.add_argument("--shards", type=_positive_int, default=1,
                       metavar="N",
                       help="split the campaign into N lease-guarded shard "
                            "processes with journal-backed work stealing "
                            "and whole-shard crash recovery (default: 1; "
                            "reports are byte-identical at any N)")

    p = sub.add_parser("bench", help="regenerate the paper's tables/figures")
    p.add_argument("workloads", nargs="*",
                   help="subset of workloads (default: all registered)")
    p.add_argument("--write-experiments", metavar="PATH",
                   help="also write an EXPERIMENTS.md-style report")
    p.add_argument("--json", metavar="PATH",
                   help="also write the tables/figures as structured JSON")
    p.add_argument("--sabotage", metavar="WORKLOAD",
                   help="deliberately strangle one workload's simulations "
                        "(demonstrates graceful degradation of the report)")
    p.add_argument("--stats", action="store_true",
                   help="collect per-cell scheduler/simulator counters and "
                        "print the boosting-statistics tables (also embeds "
                        "them in --json output)")
    add_parallel_opts(p)
    add_backend_opt(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "verify",
        help="differential fault-injection verification of boosting")
    p.add_argument("--seeds", type=int, default=20,
                   help="fault-plan seeds per (workload, model) "
                        "(default: 20)")
    p.add_argument("--seed", type=int, default=None,
                   help="run exactly one seed (reproduce a report)")
    p.add_argument("--seed-start", type=int, default=0,
                   help="first seed of the range (default: 0)")
    p.add_argument("--workloads", nargs="+", metavar="NAME",
                   help="subset of workloads (default: all registered)")
    p.add_argument("--models", nargs="+", metavar="MODEL",
                   help="boosting models to verify (default: squashing "
                        "boost1 minboost3 boost7)")
    p.add_argument("--no-selftest", action="store_true",
                   help="skip the broken-shift-buffer checker self-test")
    add_parallel_opts(p)
    add_backend_opt(p)
    p.set_defaults(fn=cmd_verify)

    from repro.verify.fuzz.fuzzcampaign import SABOTAGES
    from repro.verify.fuzz.generator import SIZE_PROFILES

    p = sub.add_parser(
        "fuzz",
        help="generative differential fuzzing of the whole pipeline")
    p.add_argument("--count", type=int, default=50, metavar="N",
                   help="generated programs (default: 50)")
    p.add_argument("--seed-start", type=int, default=0,
                   help="first program seed (default: 0)")
    p.add_argument("--plans", type=int, default=4, metavar="N",
                   help="fault plans per program, including the benign "
                        "plan (default: 4)")
    p.add_argument("--size", choices=sorted(SIZE_PROFILES), default="small",
                   help="generated-program size profile (default: small)")
    p.add_argument("--pred-lo", type=float, default=0.72,
                   help="lower end of the branch-predictability band "
                        "(default: 0.72)")
    p.add_argument("--pred-hi", type=float, default=0.98,
                   help="upper end of the branch-predictability band "
                        "(default: 0.98)")
    p.add_argument("--models", nargs="+", metavar="MODEL",
                   help="boosting models for the superscalar cells "
                        "(default: squashing boost7)")
    p.add_argument("--backends", nargs="+", metavar="ENGINE",
                   help="execution engines to cross-check "
                        "(default: reference interp translate)")
    p.add_argument("--dynamic-variants", nargs="+", metavar="VARIANT",
                   help="dynamic-machine comparator variants for the "
                        "benign-plan cells (default: norename rename lsq "
                        "memdep memdep-tight)")
    p.add_argument("--sabotage", choices=sorted(SABOTAGES), default=None,
                   help="plant a deliberate bug so the campaign can prove "
                        "it catches, reduces, and triages one")
    p.add_argument("--triage-dir", metavar="PATH",
                   default=".repro-fuzz-triage",
                   help="persistent triage corpus: one directory per "
                        "divergence signature with minimized source and a "
                        "one-line repro (default: .repro-fuzz-triage)")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip automatic divergence reduction")
    p.add_argument("--json", metavar="PATH",
                   help="also write campaign stats and divergences as JSON")
    add_parallel_opts(p)
    p.set_defaults(fn=cmd_fuzz)

    def add_socket_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", metavar="PATH",
                       default=".repro-service.sock",
                       help="service Unix socket path "
                            "(default: .repro-service.sock)")

    p = sub.add_parser(
        "serve",
        help="run the campaign service daemon (see docs/service.md)")
    add_socket_opt(p)
    p.add_argument("--state-dir", metavar="PATH",
                   default=".repro-service",
                   help="service state directory: per-job journals, "
                        "records, and reports (default: .repro-service)")
    p.add_argument("--queue-bound", type=_positive_int, default=4,
                   metavar="N",
                   help="max jobs admitted but not yet terminal; beyond "
                        "this, submissions get a structured REJECTED busy "
                        "(default: 4)")
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes per campaign job (default: 1)")
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="compile-cache directory shared by every job "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-boost)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk compile cache")
    p.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="SECS",
                   help="per-task wall-clock timeout inside each job "
                        "(default: none)")
    p.add_argument("--retries", type=_nonnegative_int, default=None,
                   metavar="N",
                   help="retry budget, both for tasks inside a job and for "
                        "runner processes that die (default: 2)")
    p.add_argument("--backoff", type=_positive_float, default=0.5,
                   metavar="SECS",
                   help="base retry backoff inside each job (default: 0.5)")
    p.add_argument("--breaker-threshold", type=_positive_int, default=3,
                   metavar="N",
                   help="consecutive timeout/killed failures on one "
                        "configuration cell before its circuit opens "
                        "(default: 3)")
    p.add_argument("--breaker-cooldown", type=_positive_float, default=30.0,
                   metavar="SECS",
                   help="seconds an open circuit waits before admitting a "
                        "half-open probe (default: 30)")
    p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                   help="service chaos self-test: seeded SIGKILLs of "
                        "runner processes mid-job; reports must still "
                        "converge byte-identically")
    p.add_argument("--resume", action="store_true",
                   help="re-adopt non-terminal jobs from a previous daemon "
                        "life; their reports are byte-identical to an "
                        "uninterrupted run")
    p.set_defaults(fn=cmd_serve)

    from repro.service.protocol import JOB_KINDS

    p = sub.add_parser(
        "submit", help="submit a campaign job to the service")
    p.add_argument("kind", choices=JOB_KINDS,
                   help="campaign kind to run")
    add_socket_opt(p)
    p.add_argument("--params", metavar="JSON", default="{}",
                   help="campaign parameters as a JSON object, e.g. "
                        "'{\"workloads\": [\"matmul\"]}' — see "
                        "docs/service.md for each kind's parameters")
    p.add_argument("--deadline", type=_positive_float, default=None,
                   metavar="SECS",
                   help="wall-clock budget from admission; an expired job "
                        "returns a structured partial report "
                        "(default: none)")
    p.add_argument("--detach", action="store_true",
                   help="exit after admission (prints the job id); poll "
                        "with `repro status`")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="query the campaign service")
    add_socket_opt(p)
    p.add_argument("--job", metavar="ID", default=None,
                   help="show one job's detail (including its report when "
                        "terminal) instead of the overview")
    p.add_argument("--json", action="store_true",
                   help="print the raw response object")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser(
        "drain",
        help="gracefully drain the service: finish in-flight jobs, stop")
    add_socket_opt(p)
    p.set_defaults(fn=cmd_drain)

    p = sub.add_parser("workloads", help="list the workload suite")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("models", help="list the boosting hardware models")
    p.set_defaults(fn=cmd_models)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if getattr(args, "backend", None):
        # Exported rather than threaded through call sites so parallel
        # worker processes inherit the same engine choice.
        os.environ["REPRO_SIM_BACKEND"] = args.backend
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Clean SIGINT/SIGTERM shutdown: pools are torn down where the
        # interrupt fired; report it and exit with the conventional 130.
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
