"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — compile a Minic source file and print the scheduled
  program (cycle rows, boost labels, recovery code);
* ``run FILE`` — compile and simulate, printing the program output and the
  cycle statistics;
* ``bench [WORKLOAD ...]`` — regenerate the paper's tables and figures;
* ``verify`` — fault-injection differential verification of the boosting
  machinery (see ``docs/fault-injection.md``);
* ``workloads`` — list the Table-1 workload suite;
* ``models`` — list the boosting hardware models and their parameters.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.frontend import CodegenError, LexError, ParseError
from repro.harness.cache import CompileCache
from repro.harness.experiments import Lab
from repro.harness.pipeline import CompileConfig, compile_minic
from repro.harness.report import bench_json, render_all
from repro.sched.boostmodel import ALL_MODELS, BY_NAME
from repro.sched.machine import SCALAR, SUPERSCALAR
from repro.workloads import all_workloads


def _build_config(args: argparse.Namespace) -> CompileConfig:
    machine = SCALAR if args.machine == "scalar" else SUPERSCALAR
    model = BY_NAME[args.model]
    return CompileConfig(
        machine=machine,
        model=model,
        scheduler=args.scheduler,
        regalloc=args.regalloc,
        unroll=args.unroll,
    )


def _load_inputs(spec: Optional[str]) -> Optional[dict]:
    """Inputs come as JSON: {"name": [ints] | int | "bytes-as-string"}."""
    if spec is None:
        return None
    raw = json.loads(spec)
    return {k: (v.encode() if isinstance(v, str) else v)
            for k, v in raw.items()}


def _read_source(path: str) -> str:
    """Read a source file, closing the handle even on a decode error."""
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _source_or_exit(path: str) -> Optional[str]:
    try:
        return _read_source(path)
    except OSError as err:
        reason = err.strerror or str(err)
        print(f"repro: cannot read {path}: {reason}", file=sys.stderr)
        return None


def _compile_or_exit(source: str, path: str, config: CompileConfig, train):
    """Compile, reporting Minic front-end errors as a one-line message
    (matching the missing-file convention) instead of a traceback."""
    try:
        return compile_minic(source, config, train)
    except (LexError, ParseError, CodegenError) as err:
        print(f"repro: {path}: {err}", file=sys.stderr)
        return None


def _make_cache(args: argparse.Namespace) -> Optional[CompileCache]:
    if args.no_cache:
        return None
    return CompileCache(args.cache_dir)


def cmd_compile(args: argparse.Namespace) -> int:
    source = _source_or_exit(args.file)
    if source is None:
        return 2
    config = _build_config(args)
    cp = _compile_or_exit(source, args.file, config, _load_inputs(args.train))
    if cp is None:
        return 2
    print(f"# {config.describe()}")
    if cp.stats is not None:
        print(f"# traces={cp.stats.traces} boosted={cp.stats.boosted} "
              f"duplicates={cp.stats.duplicates} "
              f"compensation-blocks={cp.stats.split_blocks}")
    print(cp.sched.dump())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _source_or_exit(args.file)
    if source is None:
        return 2
    config = _build_config(args)
    train = _load_inputs(args.train)
    inputs = _load_inputs(args.input) or train
    cp = _compile_or_exit(source, args.file, config, train)
    if cp is None:
        return 2
    result = cp.run(inputs)
    reference = cp.run_functional(inputs)
    status = "OK" if result.output == reference.output else "MISMATCH"
    for value in result.output:
        print(value)
    print(f"# [{config.describe()}] cycles={result.cycle_count:,} "
          f"instructions={result.instr_count:,} ipc={result.ipc:.3f} "
          f"branches={result.branch_count:,} "
          f"pred-acc={result.prediction_accuracy * 100:.1f}% "
          f"oracle={status}", file=sys.stderr)
    return 0 if status == "OK" else 1


def cmd_bench(args: argparse.Namespace) -> int:
    workloads = all_workloads()
    if args.workloads:
        known = {w.name for w in workloads}
        unknown = set(args.workloads) - known
        if unknown:
            print(f"unknown workloads: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        workloads = [w for w in workloads if w.name in args.workloads]
    if args.sabotage and args.sabotage not in {w.name for w in workloads}:
        print(f"unknown sabotage workload: {args.sabotage}", file=sys.stderr)
        return 2
    t0 = time.time()
    lab = Lab(workloads, sabotage=args.sabotage, cache=_make_cache(args))
    if args.jobs > 1:
        lab.populate(args.jobs)
    print(render_all(lab))
    # Timing is nondeterministic — keep it off stdout so reports diff clean.
    print(f"[{time.time() - t0:.0f}s of simulation]", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(bench_json(lab), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.write_experiments:
        from repro.harness.report import write_experiments_md
        write_experiments_md(lab, args.write_experiments)
        print(f"wrote {args.write_experiments}", file=sys.stderr)
    if lab.errors:
        print(f"bench: {len(lab.errors)} cell(s) failed — see the error "
              "summary above", file=sys.stderr)
        return 1
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import VerifyCampaign, run_selftest

    def progress(msg: str) -> None:
        print(msg, file=sys.stderr, flush=True)

    exit_code = 0
    if not args.no_selftest:
        selftest = run_selftest()
        print(selftest.format())
        print()
        if not selftest.caught:
            return 2

    if args.seed is not None:
        seeds, seed_start = 1, args.seed
    else:
        seeds, seed_start = args.seeds, args.seed_start
    try:
        campaign = VerifyCampaign(
            workload_names=args.workloads or None,
            model_keys=args.models or None,
            seeds=seeds, seed_start=seed_start, progress=progress,
            cache=_make_cache(args))
    except ValueError as err:
        print(f"repro verify: {err}", file=sys.stderr)
        return 2
    summary = campaign.run(jobs=args.jobs)
    print(summary.format())
    if not summary.ok:
        exit_code = 1
    return exit_code


def cmd_workloads(_args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'stands in for':22s} description")
    for w in all_workloads():
        print(f"{w.name:10s} {w.paper_benchmark:22s} {w.description}")
    return 0


def cmd_models(_args: argparse.Namespace) -> int:
    print(f"{'model':10s} {'max level':>9s} {'stores':>7s} "
          f"{'multi-file':>10s} {'squash-only':>11s}")
    for m in ALL_MODELS:
        print(f"{m.name:10s} {m.max_level:>9d} "
              f"{'yes' if m.boost_stores else 'no':>7s} "
              f"{'yes' if m.multi_shadow_files else 'no':>10s} "
              f"{'yes' if m.squash_only else 'no':>11s}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Boosting (ASPLOS'92) reproduction: compile, simulate, "
                    "and benchmark.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compile_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="Minic source file")
        p.add_argument("--machine", choices=["scalar", "superscalar"],
                       default="superscalar")
        p.add_argument("--model", choices=sorted(BY_NAME), default="MinBoost3")
        p.add_argument("--scheduler", choices=["bb", "global"],
                       default="global")
        p.add_argument("--regalloc", choices=["round_robin", "infinite"],
                       default="round_robin")
        p.add_argument("--unroll", type=int, default=1)
        p.add_argument("--train", help="JSON training inputs "
                       "(profile source)", default=None)

    p = sub.add_parser("compile", help="print the scheduled program")
    add_compile_opts(p)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and simulate")
    add_compile_opts(p)
    p.add_argument("--input", help="JSON evaluation inputs (defaults to "
                   "--train)", default=None)
    p.set_defaults(fn=cmd_run)

    def add_parallel_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1 = in-process; "
                            "reports are byte-identical at any N)")
        p.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="compile-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-boost)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk compile cache")

    p = sub.add_parser("bench", help="regenerate the paper's tables/figures")
    p.add_argument("workloads", nargs="*",
                   help="subset of workloads (default: all seven)")
    p.add_argument("--write-experiments", metavar="PATH",
                   help="also write an EXPERIMENTS.md-style report")
    p.add_argument("--json", metavar="PATH",
                   help="also write the tables/figures as structured JSON")
    p.add_argument("--sabotage", metavar="WORKLOAD",
                   help="deliberately strangle one workload's simulations "
                        "(demonstrates graceful degradation of the report)")
    add_parallel_opts(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "verify",
        help="differential fault-injection verification of boosting")
    p.add_argument("--seeds", type=int, default=20,
                   help="fault-plan seeds per (workload, model) "
                        "(default: 20)")
    p.add_argument("--seed", type=int, default=None,
                   help="run exactly one seed (reproduce a report)")
    p.add_argument("--seed-start", type=int, default=0,
                   help="first seed of the range (default: 0)")
    p.add_argument("--workloads", nargs="+", metavar="NAME",
                   help="subset of workloads (default: all seven)")
    p.add_argument("--models", nargs="+", metavar="MODEL",
                   help="boosting models to verify (default: squashing "
                        "boost1 minboost3 boost7)")
    p.add_argument("--no-selftest", action="store_true",
                   help="skip the broken-shift-buffer checker self-test")
    add_parallel_opts(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("workloads", help="list the workload suite")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("models", help="list the boosting hardware models")
    p.set_defaults(fn=cmd_models)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
