"""repro — a reproduction of "Efficient Superscalar Performance Through
Boosting" (Smith, Horowitz, Lam; ASPLOS 1992).

The package builds the paper's whole system from scratch:

* a MIPS-R2000-like ISA with the ``.Bn`` boosting annotation
  (:mod:`repro.isa`);
* the Minic front end, classic optimizations, and a round-robin register
  allocator (:mod:`repro.frontend`, :mod:`repro.opt`);
* the trace-based global scheduler with boosting, duplication, and
  recovery-code generation (:mod:`repro.sched`);
* cycle-level machine models: the scalar baseline, the 2-issue
  statically-scheduled superscalar with shadow register files / shadow
  store buffer / exception shift buffer, and the dynamically-scheduled
  Tomasulo+ROB comparator (:mod:`repro.hw`);
* the Table-1 workloads (plus two fuzz-promoted ones) and the harness regenerating
  every table and figure of the paper (:mod:`repro.workloads`,
  :mod:`repro.harness`).

Quick start::

    from repro import CompileConfig, compile_minic, MINBOOST3, SUPERSCALAR

    source = "func main() { print(6 * 7); }"
    cp = compile_minic(source, CompileConfig(machine=SUPERSCALAR,
                                             model=MINBOOST3))
    result = cp.run()
    print(result.output, result.cycle_count)
"""

from repro.frontend import compile_source, parse
from repro.harness import (
    CompileConfig, CompiledProgram, Lab, SCALAR_CONFIG, compile_ir,
    compile_minic, render_all,
)
from repro.hw import (
    DynamicSim, ExecutionResult, FunctionalSim, SuperscalarSim, Trap,
    TrapKind, run_dynamic, run_functional, run_scheduled,
)
from repro.isa import Instruction, Opcode, Reg
from repro.program import ProcBuilder, Program, parse_program
from repro.sched import (
    ALL_MODELS, BOOST1, BOOST7, BoostModel, MINBOOST3, NO_BOOST, SCALAR,
    SQUASHING, SUPERSCALAR, schedule_program_bb, schedule_program_global,
)
from repro.workloads import Workload, all_workloads

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS", "BOOST1", "BOOST7", "BoostModel", "CompileConfig",
    "CompiledProgram", "DynamicSim", "ExecutionResult", "FunctionalSim",
    "Instruction", "Lab", "MINBOOST3", "NO_BOOST", "Opcode", "ProcBuilder",
    "Program", "Reg", "SCALAR", "SCALAR_CONFIG", "SQUASHING", "SUPERSCALAR",
    "SuperscalarSim", "Trap", "TrapKind", "Workload", "all_workloads",
    "compile_ir", "compile_minic", "compile_source", "parse", "parse_program",
    "render_all", "run_dynamic", "run_functional", "run_scheduled",
    "schedule_program_bb", "schedule_program_global",
]
