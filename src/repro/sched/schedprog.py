"""Scheduled-program containers.

A schedule is, per basic block, a dense matrix of cycles × issue slots.
Empty slots are ``None`` (the hardware sees implicit NOPs).  Conditional
branches resolve at the end of their issue cycle; the following cycle is the
architectural *delay cycle* and always executes; block control transfer
happens after it.  The scheduler guarantees the branch is always placed so
that exactly one cycle follows it (or zero for ``halt``/fall-through pads).

Recovery blocks (Section 2.3) hang off the procedure, indexed by the uid of
the committing branch; they are executed one instruction per cycle after a
boosted exception commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa.instruction import Instruction
from repro.program.procedure import Program
from repro.sched.boostmodel import BoostModel
from repro.sched.machine import MachineConfig


@dataclass
class ScheduledBlock:
    label: str
    cycles: list[list[Optional[Instruction]]] = field(default_factory=list)
    #: cycle index holding the terminator (branch/jump/halt), if any
    terminator_cycle: Optional[int] = None

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.terminator_cycle is None:
            return None
        for instr in self.cycles[self.terminator_cycle]:
            if instr is not None and instr.is_terminator:
                return instr
        return None

    def instructions(self) -> Iterator[Instruction]:
        for row in self.cycles:
            for instr in row:
                if instr is not None:
                    yield instr

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def slot_count(self) -> int:
        return sum(len(row) for row in self.cycles)

    def dump(self) -> str:
        lines = [f"{self.label}:"]
        for c, row in enumerate(self.cycles):
            cells = " | ".join(
                f"{str(i):<28}" if i is not None else f"{'-':<28}" for i in row)
            marker = " <branch>" if c == self.terminator_cycle else ""
            lines.append(f"  c{c:<3} {cells}{marker}")
        return "\n".join(lines)


@dataclass
class RecoveryBlock:
    """Compiler-generated boosted-exception recovery code (Section 2.3)."""

    branch_uid: int
    instructions: list[Instruction]
    #: label of the predicted successor the recovery code jumps back to
    resume_label: str


@dataclass
class ScheduledProcedure:
    name: str
    blocks: list[ScheduledBlock] = field(default_factory=list)
    recovery: dict[int, RecoveryBlock] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_label = {b.label: b for b in self.blocks}

    def add_block(self, block: ScheduledBlock) -> ScheduledBlock:
        self.blocks.append(block)
        self._by_label[block.label] = block
        return block

    def block(self, label: str) -> ScheduledBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def block_index(self, label: str) -> int:
        for i, b in enumerate(self.blocks):
            if b.label == label:
                return i
        raise KeyError(label)

    def instruction_count(self) -> int:
        n = sum(b.instruction_count() for b in self.blocks)
        n += sum(len(r.instructions) for r in self.recovery.values())
        return n

    def dump(self) -> str:
        parts = [f"proc {self.name}:"]
        parts.extend(b.dump() for b in self.blocks)
        for uid, recov in sorted(self.recovery.items()):
            parts.append(f"  recovery for branch {uid} -> {recov.resume_label}:")
            parts.extend(f"    {i}" for i in recov.instructions)
        return "\n".join(parts)


@dataclass
class ScheduledProgram:
    """A fully scheduled program, ready for the timing simulators."""

    program: Program                      # data segment, entry, original IR
    machine: MachineConfig
    model: BoostModel
    procedures: dict[str, ScheduledProcedure] = field(default_factory=dict)

    def add(self, proc: ScheduledProcedure) -> ScheduledProcedure:
        self.procedures[proc.name] = proc
        return proc

    def proc(self, name: str) -> ScheduledProcedure:
        return self.procedures[name]

    def instruction_count(self) -> int:
        return sum(p.instruction_count() for p in self.procedures.values())

    def boosted_count(self) -> int:
        return sum(
            1
            for proc in self.procedures.values()
            for block in proc.blocks
            for instr in block.instructions()
            if instr.is_boosted
        )

    def code_growth(self, original: Program) -> float:
        """Static instruction count relative to the unscheduled program."""
        base = original.instruction_count()
        return self.instruction_count() / base if base else 1.0

    def dump(self) -> str:
        return "\n\n".join(p.dump() for p in self.procedures.values())
