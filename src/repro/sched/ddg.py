"""Data-dependence graph over a straight-line instruction sequence.

Used for a single basic block (local scheduling) or a whole trace (global
scheduling).  Edge kinds and latencies:

* RAW on a register — latency of the producer;
* WAR — 0 (the register file reads before it writes within a cycle);
* WAW — 1 (two writes to one register must be in distinct cycles);
* memory: store→load / store→store — 1, load→store — 0, refined by the
  base+offset disambiguator in :mod:`repro.analysis.memdep`;
* calls are full barriers (registers via the calling convention, memory and
  output explicitly);
* PRINT→PRINT — 1 (program output order is architectural);
* branch→branch — 1: the only control edges, keeping the original branch
  order (Section 3.2.1: no control-dependence edges are added — that is the
  point of boosting).

Crucially, a non-branch instruction has **no** edge to the branches above it
in the trace: the scheduler is free to move it up past them, and the
bookkeeping engine decides whether that motion needs duplication or boosting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import instr_defs, instr_uses
from repro.analysis.memdep import access_size, base_reg
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg


@dataclass
class DepNode:
    idx: int
    instr: Instruction
    #: index of the trace block this instruction originally lives in
    home: int
    #: (other idx, latency, kind); kind in {"raw", "war", "waw", "mem_raw",
    #: "mem_war", "mem_waw", "order"}
    succs: list[tuple[int, int, str]] = field(default_factory=list)
    preds: list[tuple[int, int, str]] = field(default_factory=list)

    @property
    def latency(self) -> int:
        return self.instr.op.latency


class DepGraph:
    def __init__(self, instrs: list[Instruction],
                 homes: list[int] | None = None) -> None:
        if homes is None:
            homes = [0] * len(instrs)
        self.nodes = [DepNode(i, instr, home)
                      for i, (instr, home) in enumerate(zip(instrs, homes))]
        self._edges: set[tuple[int, int]] = set()
        self._build()

    # ------------------------------------------------------------------ build
    def add_edge(self, src: int, dst: int, lat: int, kind: str) -> None:
        if src == dst:
            return
        key = (src, dst)
        if key in self._edges:
            # Keep the max latency; RAW kinds dominate ordering kinds.
            for k, (s, old_lat, old_kind) in enumerate(self.nodes[src].succs):
                if s == dst:
                    new_lat = max(lat, old_lat)
                    new_kind = old_kind
                    if kind.endswith("raw") and not old_kind.endswith("raw"):
                        new_kind = kind
                    self.nodes[src].succs[k] = (dst, new_lat, new_kind)
                    for m, (p, _, _) in enumerate(self.nodes[dst].preds):
                        if p == src:
                            self.nodes[dst].preds[m] = (src, new_lat, new_kind)
            return
        self._edges.add(key)
        self.nodes[src].succs.append((dst, lat, kind))
        self.nodes[dst].preds.append((src, lat, kind))

    def _build(self) -> None:  # noqa: C901 - classic DDG construction
        last_def: dict[Reg, int] = {}
        uses_since_def: dict[Reg, list[int]] = {}
        reg_version: dict[Reg, int] = {}
        mem_history: list[tuple[int, bool, Reg, int, int, int]] = []
        # (idx, is_store, base, version, offset, size)
        last_branch: int | None = None
        last_print: int | None = None
        last_call: int | None = None

        for node in self.nodes:
            instr = node.instr
            i = node.idx
            op = instr.op

            for reg in instr_uses(instr):
                if reg in last_def:
                    producer = self.nodes[last_def[reg]]
                    self.add_edge(producer.idx, i, producer.latency, "raw")
                uses_since_def.setdefault(reg, []).append(i)
            for reg in instr_defs(instr):
                if reg in last_def:
                    self.add_edge(last_def[reg], i, 1, "waw")
                for user in uses_since_def.get(reg, ()):
                    self.add_edge(user, i, 0, "war")
                last_def[reg] = i
                uses_since_def[reg] = []
                reg_version[reg] = reg_version.get(reg, 0) + 1

            is_barrier = op.is_call
            if op.is_mem or is_barrier:
                if op.is_mem:
                    b = base_reg(instr)
                    entry = (i, op.is_store, b, reg_version.get(b, 0),
                             instr.imm or 0, access_size(instr))
                else:
                    entry = (i, True, None, -1, 0, 1 << 30)  # call: aliases all
                for (j, j_store, j_base, j_ver, j_off, j_size) in mem_history:
                    i_store = entry[1]
                    if not i_store and not j_store:
                        continue  # load-load: independent
                    if self._no_alias(entry, (j, j_store, j_base, j_ver,
                                              j_off, j_size)):
                        continue
                    if j_store and not entry[1]:
                        kind, lat = "mem_raw", 1       # store -> load
                    elif j_store and entry[1]:
                        kind, lat = "mem_waw", 1       # store -> store
                    else:
                        kind, lat = "mem_war", 0       # load -> store
                    self.add_edge(j, i, lat, kind)
                mem_history.append(entry)

            if op is Opcode.PRINT or is_barrier:
                if last_print is not None:
                    self.add_edge(last_print, i, 1, "order")
                last_print = i
            if is_barrier:
                if last_call is not None:
                    self.add_edge(last_call, i, 1, "order")
                last_call = i
            if op.is_branch or op is Opcode.HALT:
                if last_branch is not None:
                    self.add_edge(last_branch, i, 1, "order")
                last_branch = i

    @staticmethod
    def _no_alias(a: tuple, b: tuple) -> bool:
        (_, _, a_base, a_ver, a_off, a_size) = a
        (_, _, b_base, b_ver, b_off, b_size) = b
        if a_base is None or b_base is None:
            return False
        if a_base is not b_base or a_ver != b_ver:
            return False
        return a_off + a_size <= b_off or b_off + b_size <= a_off

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.nodes)

    def preds_of(self, idx: int) -> list[tuple[int, int, str]]:
        return self.nodes[idx].preds

    def succs_of(self, idx: int) -> list[tuple[int, int, str]]:
        return self.nodes[idx].succs

    def raw_preds_of(self, idx: int) -> list[int]:
        """Value-producing predecessors (register or memory RAW)."""
        return [p for p, _, kind in self.nodes[idx].preds
                if kind in ("raw", "mem_raw")]

    def critical_path_heights(self) -> list[int]:
        """Longest-path-to-any-leaf for each node (list-scheduler priority)."""
        heights = [0] * len(self.nodes)
        for node in reversed(self.nodes):
            best = 0
            for succ, lat, _ in node.succs:
                best = max(best, heights[succ] + lat)
            heights[node.idx] = best
        return heights
