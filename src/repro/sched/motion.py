"""Upward-code-motion legality and bookkeeping (Section 3.2.2, Figure 5).

Moving an instruction from its *home* trace block up to an earlier
*placement* block crosses block boundaries.  For each crossing this engine
decides, using global data-flow information:

* **boosting** — crossing a conditional branch is speculative; it needs
  hardware support (a boost level) exactly when the motion is *unsafe* (the
  instruction can except), *illegal* (its destination is live on the
  off-trace path, or it writes memory), or it consumes a value that is still
  speculative at the placement point;
* **duplication** — crossing into a join block from above requires a copy of
  the instruction at the end of every off-trace predecessor, unless the
  placement block is control- and data-equivalent to the join (Figure 3's
  ``i5`` case);
* a duplicate that lands in a block ending in a conditional branch is itself
  speculative there and may in turn need boosting (with the branch predicted
  toward the join).

The engine answers with a :class:`MotionPlan`; the global scheduler applies
it.  Anything the plan cannot express safely is rejected — rejected motions
merely leave a schedule hole, never break the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.equivalence import ControlEquivalence, conflicts_with
from repro.analysis.liveness import Liveness, instr_defs, instr_uses
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.program.block import BasicBlock
from repro.program.cfg import CFG
from repro.program.procedure import Procedure
from repro.sched.boostmodel import BoostModel
from repro.sched.traces import Trace


@dataclass
class DupPlan:
    """One compensation copy for an off-trace edge into ``join_label``.

    ``kind`` is ``"append"`` (copy at the end of ``pred_label``, boosted one
    level if ``boost``) or ``"split"`` (create a new basic block on the
    ``pred_label -> join_label`` edge and put the copy there — the paper's
    "on-demand creation of basic blocks to hold duplicated instructions")."""

    pred_label: str
    join_label: str
    boost: int = 0  # 0 or 1; always 0 for splits
    kind: str = "append"


@dataclass
class MotionPlan:
    ok: bool
    reason: str = ""
    #: short machine-readable rejection category (for SchedStats histograms)
    code: str = ""
    boost: int = 0
    #: trace positions of the conditional branches crossed (for recovery)
    cond_positions: tuple[int, ...] = ()
    dups: list[DupPlan] = field(default_factory=list)

    @classmethod
    def fail(cls, reason: str, code: str = "other") -> "MotionPlan":
        return cls(ok=False, reason=reason, code=code)


class MotionEngine:
    """Per-trace motion oracle.  Recomputes liveness lazily after the
    bookkeeping mutates off-trace blocks."""

    def __init__(self, proc: Procedure, cfg: CFG, trace: Trace,
                 model: BoostModel, scheduled_labels: set[str],
                 resume_label: Optional[dict[int, str]] = None,
                 comp_defs: Optional[dict[str, set]] = None,
                 shadow_defs: Optional[dict[str, set]] = None) -> None:
        self.proc = proc
        self.cfg = cfg
        self.trace = trace
        self.model = model
        self.scheduled_labels = scheduled_labels
        self.resume_label = resume_label if resume_label is not None else {}
        #: registers killed by plain compensation copies, per block label —
        #: shared across the procedure's traces.  A plain copy appended to a
        #: predecessor stands in for its original on that edge (the original
        #: is boosted or moved away in the *schedule*, even though it still
        #: sits in its home block in the IR), so it must remain the last
        #: write of its register in that block: a later sequential motion
        #: into the block may not redefine these.
        self.comp_defs = comp_defs if comp_defs is not None else {}
        #: registers written by *boosted* compensation copies, per block
        #: label.  Until its branch commits, such a write lives only in the
        #: shadow file — a later plain (sequential) copy in the same block
        #: that reads one of these registers would see stale architectural
        #: state, so it must be boosted too (or pushed onto the edge, which
        #: runs after the commit).
        self.shadow_defs = shadow_defs if shadow_defs is not None else {}
        self.equiv = ControlEquivalence(cfg)
        self._liveness: Optional[Liveness] = None
        self._between_cache: dict[tuple[str, str], list[Instruction]] = {}
        #: compensation blocks created by edge splitting, for the caller to
        #: schedule after the traces
        self.new_blocks: list[str] = []

    # ------------------------------------------------------------- liveness
    @property
    def liveness(self) -> Liveness:
        if self._liveness is None:
            self._liveness = Liveness(self.cfg)
        return self._liveness

    def invalidate_liveness(self) -> None:
        self._liveness = None

    def invalidate_between(self) -> None:
        """Instructions moved between blocks change the equivalence-hop
        conflict sets."""
        self._between_cache.clear()

    # ----------------------------------------------------------------- plan
    def plan(self, instr: Instruction, home_pos: int, place_pos: int,
             has_spec_producer: bool,
             in_squash_region: bool) -> MotionPlan:
        if home_pos == place_pos:
            return MotionPlan(ok=True)
        if instr.is_boosted:
            return MotionPlan.fail("compensation copies do not move again",
                                   code="comp-copy")
        # The crossed terminators must all be fall-throughs, jumps, or
        # conditional branches; traces never cross calls/returns.
        labels = self.trace.labels
        for m in range(place_pos, home_pos):
            term = self.proc.block(labels[m]).terminator
            if term is None or term.op is Opcode.J or term.op.is_cond_branch:
                continue
            return MotionPlan.fail(
                f"cannot move across {term.op.mnemonic} at {labels[m]}",
                code="barrier")

        plan = self._plan_nonspeculative(instr, home_pos, place_pos,
                                         has_spec_producer)
        if plan is not None:
            return plan
        return self._plan_boosted(instr, home_pos, place_pos,
                                  in_squash_region)

    def _cond_positions(self, lo: int, hi: int) -> list[int]:
        """Trace positions in [lo, hi) whose block ends in a conditional
        branch."""
        labels = self.trace.labels
        return [m for m in range(lo, hi)
                if self.proc.block(labels[m]).ends_in_cond_branch]

    def _plan_nonspeculative(self, instr: Instruction, home_pos: int,
                             place_pos: int,
                             has_spec_producer: bool) -> Optional[MotionPlan]:
        """Figure 5's walk: equivalence hops where possible, otherwise plain
        (safe-and-legal) speculative steps with plain/boosted duplicates.
        Returns None when the motion cannot be done without boosting the
        instruction itself."""
        if has_spec_producer:
            # The value it consumes lives only in shadow state; a sequential
            # placement would read a stale register.
            return None
        labels = self.trace.labels
        crossed: list[int] = []
        dups: list[DupPlan] = []
        cur = home_pos
        guard = 0
        while cur > place_pos:
            guard += 1
            if guard > 1000:
                return None
            hop = None
            for p in range(place_pos, cur):
                if self._equivalence_hop(instr, labels[p], labels[cur]):
                    hop = p
                    break
            if hop is not None:
                cur = hop
                continue
            # One plain step up: crossing the terminator of cur-1 ...
            below = labels[cur - 1]
            term = self.proc.block(below).terminator
            if term is not None and term.op.is_cond_branch:
                if instr.op.can_except or instr.op.is_store \
                        or not instr.side_effect_free:
                    return None
                off = self.cfg.off_trace_succ(below, labels[cur])
                if off is not None and any(
                        d in self.liveness.live_in.get(off, frozenset())
                        for d in instr_defs(instr)):
                    return None  # illegal without renaming: needs boosting
                if self.comp_defs.get(below, frozenset()) \
                        & set(instr_defs(instr)):
                    # A compensation copy in ``below`` kills one of these
                    # registers for its off-trace edge; IR liveness still
                    # thinks the kill happens in the copy's home block, but
                    # in the schedule the copy is the last write — a
                    # sequential redefinition after it would leak across
                    # that edge.
                    return None
                crossed.append(cur - 1)
            # ... and out of the top of cur: joins need compensation.
            on_trace_pred = labels[cur - 1]
            for pred in self.cfg.preds(labels[cur]):
                if pred == on_trace_pred:
                    continue
                dup = self._plan_dup(instr, pred, cur, home_pos)
                if isinstance(dup, str):
                    return None
                dups.append(dup)
            cur -= 1
        return MotionPlan(ok=True, boost=0,
                          cond_positions=tuple(sorted(crossed)), dups=dups)

    def _plan_boosted(self, instr: Instruction, home_pos: int, place_pos: int,
                      in_squash_region: bool) -> MotionPlan:
        """Boosted motion: under the trace encoding the instruction becomes
        control dependent on *every* conditional branch it moves above
        (Section 2.3), and every crossed join needs compensation copies —
        equivalence hops do not combine with boosting."""
        labels = self.trace.labels
        cond_positions = self._cond_positions(place_pos, home_pos)
        level = len(cond_positions)
        if level == 0:
            return MotionPlan.fail(
                "motion blocked by compensation-code legality",
                code="comp-legality")
        if not instr.side_effect_free and not instr.op.is_store:
            return MotionPlan.fail("output instructions never speculate",
                                   code="output")
        if not self.model.can_boost(instr, level):
            return MotionPlan.fail(
                f"{self.model.name} cannot boost {instr.op.mnemonic} to "
                f"level {level}", code="model-limit")
        if self.model.squash_only and not (
                level == 1 and home_pos == place_pos + 1 and in_squash_region):
            return MotionPlan.fail(
                "squashing pipeline boosts only into the branch and delay "
                "cycles", code="squash-window")

        dups: list[DupPlan] = []
        for m in range(place_pos + 1, home_pos + 1):
            join = labels[m]
            on_trace_pred = labels[m - 1]
            for pred in self.cfg.preds(join):
                if pred == on_trace_pred:
                    continue
                dup = self._plan_dup(instr, pred, m, home_pos)
                if isinstance(dup, str):
                    return MotionPlan.fail(dup, code="duplication")
                dups.append(dup)
        return MotionPlan(ok=True, boost=level,
                          cond_positions=tuple(cond_positions), dups=dups)

    # ------------------------------------------------------------- legality
    def _dst_live_off_trace(self, instr: Instruction,
                            cond_positions: list[int]) -> bool:
        """Is the destination live on any off-trace path of the crossed
        branches (the *illegal* condition, Figure 1b)?"""
        defs = instr_defs(instr)
        if not defs:
            return False
        labels = self.trace.labels
        for m in cond_positions:
            on_trace = labels[m + 1]
            off = self.cfg.off_trace_succ(labels[m], on_trace)
            if off is None:
                continue
            live_in = self.liveness.live_in.get(off, frozenset())
            if any(d in live_in for d in defs):
                return True
        return False

    # ---------------------------------------------------------- equivalence
    def _equivalence_hop(self, instr: Instruction, place_label: str,
                         join_label: str) -> bool:
        """Control/data-equivalent pair: no compensation needed (§3.2.2)."""
        if not self.equiv.equivalent(place_label, join_label):
            return False
        between = self._blocks_between(place_label, join_label)
        if between is None:
            return False
        return not any(conflicts_with(instr, other) for other in between)

    def _blocks_between(self, top: str,
                        bottom: str) -> Optional[list[Instruction]]:
        key = (top, bottom)
        if key in self._between_cache:
            return self._between_cache[key]
        # Forward reachability from top, stopping at bottom.
        forward: set[str] = set()
        stack = [s for s in self.cfg.succs(top)]
        guard = 0
        while stack:
            guard += 1
            if guard > 5000:
                return None
            label = stack.pop()
            if label == bottom or label in forward:
                continue
            forward.add(label)
            stack.extend(self.cfg.succs(label))
        backward: set[str] = set()
        stack = [p for p in self.cfg.preds(bottom)]
        while stack:
            label = stack.pop()
            if label == top or label in backward:
                continue
            backward.add(label)
            stack.extend(self.cfg.preds(label))
        between = forward & backward
        instrs: list[Instruction] = []
        for label in between:
            instrs.extend(self.proc.block(label).instructions())
        self._between_cache[key] = instrs
        return instrs

    # ---------------------------------------------------------- duplication
    def _plan_dup(self, instr: Instruction, pred_label: str,
                  join_pos: int, home_pos: int):
        """Plan one compensation copy for the off-trace edge
        ``pred_label -> join``.

        Placement preference: a plain copy at the end of the predecessor
        (when the copy is safe and legal there), then a boosted copy (when
        the predecessor's branch predicts toward the join and the hardware
        supports it), then a new block on the edge itself.  The conditional
        branches between the join and the instruction's home constrain every
        variant: on the off-trace path the original would only execute if
        those branches all go the trace way, so the copy must be safe and
        legal with respect to them (a boosted copy is limited to its own
        block's branch, keeping each branch's recovery set unique).

        Returns a :class:`DupPlan` or a failure-reason string.
        """
        labels = self.trace.labels
        join_label = labels[join_pos]
        if self.cfg.preds(join_label).count(pred_label) > 1:
            return f"{pred_label} reaches {join_label} on both edges"
        remaining = self._cond_positions(join_pos, home_pos)
        if remaining:
            # Any copy on this edge is speculative w.r.t. the branches below
            # the join; it must be harmless there.
            if instr.op.can_except or instr.op.is_store \
                    or not instr.side_effect_free:
                return ("copy would be unsafe below the join and cannot be "
                        "boosted past its own block")
            defs = instr_defs(instr)
            for m in remaining:
                off = self.cfg.off_trace_succ(labels[m], labels[m + 1])
                if off is not None and any(
                        d in self.liveness.live_in.get(off, frozenset())
                        for d in defs):
                    return "copy destination live below the join"

        pred = self.proc.block(pred_label)
        term = pred.terminator
        appendable = (pred_label not in self.scheduled_labels
                      and pred_label not in self.trace.labels
                      and not (term is not None
                               and (term.op.is_call or term.op.is_indirect))
                      and not (term is not None
                               and set(instr_defs(instr))
                               & set(instr_uses(term))))
        # A value produced by a boosted copy in this block exists only in
        # shadow state until the branch commits; a plain copy consuming it
        # would read stale architectural registers.  Only a boosted copy
        # (shadow-to-shadow forwarding) or an edge-split copy (runs after
        # the commit) can follow it.
        shadowed = bool(set(instr_uses(instr))
                        & self.shadow_defs.get(pred_label, frozenset()))
        if appendable and not shadowed and (term is None
                                            or term.op is Opcode.J):
            return DupPlan(pred_label, join_label, boost=0)
        if appendable and term is not None and term.op.is_cond_branch:
            off = self.cfg.off_trace_succ(pred_label, join_label)
            unsafe = instr.op.can_except
            illegal = (instr.op.is_store
                       or not instr.side_effect_free
                       or (off is not None and any(
                           d in self.liveness.live_in.get(off, frozenset())
                           for d in instr_defs(instr))))
            if not unsafe and not illegal and not shadowed:
                return DupPlan(pred_label, join_label, boost=0)
            if (instr.side_effect_free or instr.op.is_store) \
                    and not remaining \
                    and not self.model.squash_only \
                    and self.model.can_boost(instr, 1) \
                    and self.cfg.predicted_succ(pred_label) == join_label:
                return DupPlan(pred_label, join_label, boost=1)
        # Fall back to a new block on the edge: always correct, costs two
        # cycles (jump + delay) on the off-trace path.
        if not instr.side_effect_free and not instr.op.is_store:
            return "output instructions never move onto compensation edges"
        return DupPlan(pred_label, join_label, boost=0, kind="split")

    # ------------------------------------------------------------ mutation
    def apply_dups(self, instr: Instruction,
                   plan: MotionPlan) -> list[tuple[Instruction, DupPlan]]:
        """Place the compensation copies (appending or edge-splitting);
        returns (copy, plan) pairs so the caller can register recovery
        bookkeeping for boosted copies."""
        created = []
        for dp in plan.dups:
            copy = instr.copy(boost=dp.boost)
            if dp.kind == "split":
                target = self._split_edge(dp.pred_label, dp.join_label)
                self.proc.block(target).body.append(copy)
            else:
                self.proc.block(dp.pred_label).body.append(copy)
                if dp.boost == 0:
                    # Boosted copies commit at the branch, after any
                    # sequential write in the block; plain copies must stay
                    # the last write of their register.
                    self.comp_defs.setdefault(dp.pred_label, set()).update(
                        instr_defs(copy))
                else:
                    self.shadow_defs.setdefault(dp.pred_label, set()).update(
                        instr_defs(copy))
            created.append((copy, dp))
        if created:
            self.invalidate_liveness()
        return created

    def _split_edge(self, pred_label: str, join_label: str) -> str:
        """Create (once) a compensation block on ``pred -> join``; returns
        its label."""
        comp_label = self.proc.fresh_label(f"{pred_label}.comp")
        pred = self.proc.block(pred_label)
        term = pred.terminator
        comp = BasicBlock(comp_label)
        comp.terminator = Instruction(Opcode.J, target=join_label)
        if term is not None and term.target == join_label \
                and not term.op.is_call:
            # The branch/jump edge: retarget it (works even when the
            # predecessor is already scheduled — the instruction object is
            # shared with its schedule).
            self.proc.add_block(comp)  # at the end of the layout
            term.target = comp_label
            if term.op.is_cond_branch \
                    and self.resume_label.get(term.uid) == join_label:
                self.resume_label[term.uid] = comp_label
        else:
            # The fall-through edge: the new block must sit right after the
            # predecessor in the layout.
            self.proc.add_block(comp, after=pred_label)
        self.cfg.refresh()
        self._between_cache.clear()
        self.invalidate_liveness()
        self.new_blocks.append(comp_label)
        return comp_label
