"""Basic-block-only scheduling.

This is both the scalar baseline ("the scalar program is scheduled by the
commercial MIPS assembler" — local reordering plus delay-slot filling) and
the superscalar *basic block scheduling* configuration of Figure 8.

The terminator-placement rule encodes the delay-slot contract: a conditional
branch (or jump/call) is placed so that exactly one cycle of the block
follows it; putting the branch in the second-to-last busy cycle fills the
delay slot with useful work whenever dependences allow.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.program.block import BasicBlock
from repro.program.procedure import Procedure, Program
from repro.sched.boostmodel import BoostModel, NO_BOOST
from repro.sched.ddg import DepGraph
from repro.sched.listsched import ScheduleState, earliest_cycle, list_schedule
from repro.sched.machine import MachineConfig
from repro.sched.schedprog import (
    ScheduledBlock, ScheduledProcedure, ScheduledProgram,
)


def terminator_min_cycle(term: Instruction, body_len: int) -> int:
    """Earliest legal cycle for a terminator: branches must leave exactly one
    delay cycle after themselves, ``halt`` (no delay slot) must not orphan
    the last body cycle."""
    if term.op is Opcode.HALT:
        return max(body_len - 1, 0)
    return max(body_len - 2, 0)


def _feeds(ddg: DepGraph, idx: int, term_idx: int) -> bool:
    return any(succ == term_idx for succ, _, _ in ddg.succs_of(idx))


def place_terminator(ddg: DepGraph, state: ScheduleState, term_idx: int,
                     machine: MachineConfig) -> int:
    """Place the block terminator per the delay-slot contract; returns its
    cycle.

    When every slot of the candidate cycle is busy, the classic delay-slot
    fill applies: displace the last body instruction into the delay cycle
    (legal when it does not feed the branch), so the branch overlaps with
    useful work instead of trailing it.
    """
    term = ddg.nodes[term_idx].instr
    body_len = state.used_cycles()
    ready = earliest_cycle(ddg, state, term_idx)
    if ready is None:
        raise RuntimeError("terminator has unscheduled predecessors")
    k = max(ready, terminator_min_cycle(term, body_len))
    while True:
        slot = state.free_slot(k, term)
        if slot is not None:
            state.place(term_idx, term, k, slot)
            return k
        if k == body_len - 1 and term.op is not Opcode.HALT:
            moved = _displace_into_delay(ddg, state, term_idx, k, machine)
            if moved is not None:
                state.place(term_idx, term, k, moved)
                return k
        k += 1


def _displace_into_delay(ddg: DepGraph, state: ScheduleState, term_idx: int,
                         k: int, machine: MachineConfig):
    """Move one displaceable instruction from row ``k`` into the (empty)
    delay row ``k+1``; returns the freed slot index or None."""
    state.ensure_row(k + 1)
    if any(x is not None for x in state.rows[k + 1]):
        return None
    term = ddg.nodes[term_idx].instr
    by_instr = {id(ddg.nodes[i].instr): i for i in state.placed_cycle}
    for slot in machine.slots_for(term):
        victim = state.rows[k][slot]
        if victim is None:
            return slot
        v_idx = by_instr.get(id(victim))
        if v_idx is None or _feeds(ddg, v_idx, term_idx):
            continue
        # The victim slides one cycle down, so every already-placed
        # dependence successor must still issue at or after its new
        # position.  A WAR successor co-issued in row ``k`` (legal:
        # reads precede writes within a cycle) would otherwise end up
        # writing a register one cycle *before* the victim reads it.
        if any(state.placed_cycle.get(s) is not None
               and state.placed_cycle[s] < (k + 1) + lat
               for s, lat, _ in ddg.succs_of(v_idx)):
            continue
        state.rows[k + 1][slot] = victim
        state.rows[k][slot] = None
        state.placed_cycle[v_idx] = k + 1
        return slot
    return None


def block_length(term: Optional[Instruction], term_cycle: Optional[int],
                 body_len: int) -> int:
    """Total cycles of a block: delay cycle after any control transfer,
    none after ``halt`` or for fall-through blocks."""
    if term is None or term_cycle is None:
        return body_len
    if term.op is Opcode.HALT:
        return term_cycle + 1
    return term_cycle + 2


def schedule_block_local(block: BasicBlock, machine: MachineConfig,
                         stats=None) -> ScheduledBlock:
    """List-schedule one basic block in isolation."""
    instrs = list(block.body)
    term = block.terminator
    all_instrs = instrs + ([term] if term is not None else [])
    ddg = DepGraph(all_instrs)
    body_indices = list(range(len(instrs)))
    if stats is not None:
        stats.list_blocks += 1
    state = list_schedule(ddg, machine, body_indices, stats=stats)
    term_cycle: Optional[int] = None
    if term is not None:
        term_cycle = place_terminator(ddg, state, len(all_instrs) - 1, machine)
    state.trim()
    length = block_length(term, term_cycle, state.used_cycles())
    if length:
        state.pad_to(length)
    # Keep the architectural block length invariant explicit.
    del state.rows[length:]
    return ScheduledBlock(block.label, state.rows, term_cycle)


def schedule_procedure_bb(proc: Procedure, machine: MachineConfig,
                          stats=None) -> ScheduledProcedure:
    sp = ScheduledProcedure(proc.name)
    for block in proc.blocks:
        sp.add_block(schedule_block_local(block, machine, stats=stats))
    return sp


def schedule_program_bb(program: Program, machine: MachineConfig,
                        model: BoostModel = NO_BOOST,
                        stats=None) -> ScheduledProgram:
    """Basic-block schedule every procedure of a program."""
    sched = ScheduledProgram(program, machine, model)
    for proc in program.procedures.values():
        sched.add(schedule_procedure_bb(proc, machine, stats=stats))
    return sched
