"""Core list-scheduling machinery shared by the local and global schedulers.

Top-down, cycle-by-cycle list scheduling: at each cycle the ready
instructions (dependence predecessors scheduled, latencies fulfilled) compete
for the issue slots their functional unit can use.  Priority is longest
remaining critical path, then program order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instruction import Instruction
from repro.sched.ddg import DepGraph
from repro.sched.machine import MachineConfig


@dataclass
class ScheduleState:
    """A growing cycle×slot matrix with placement bookkeeping."""

    machine: MachineConfig
    rows: list[list[Optional[Instruction]]] = field(default_factory=list)
    placed_cycle: dict[int, int] = field(default_factory=dict)  # node idx -> cycle

    def ensure_row(self, cycle: int) -> None:
        while len(self.rows) <= cycle:
            self.rows.append([None] * self.machine.issue_width)

    def free_slot(self, cycle: int, instr: Instruction) -> Optional[int]:
        self.ensure_row(cycle)
        for slot in self.machine.slots_for(instr):
            if self.rows[cycle][slot] is None:
                return slot
        return None

    def place(self, node_idx: int, instr: Instruction, cycle: int,
              slot: int) -> None:
        self.ensure_row(cycle)
        if self.rows[cycle][slot] is not None:
            raise ValueError(f"slot ({cycle},{slot}) already filled")
        self.rows[cycle][slot] = instr
        self.placed_cycle[node_idx] = cycle

    def used_cycles(self) -> int:
        """Index past the last non-empty row."""
        for c in range(len(self.rows) - 1, -1, -1):
            if any(x is not None for x in self.rows[c]):
                return c + 1
        return 0

    def trim(self) -> None:
        del self.rows[self.used_cycles():]

    def pad_to(self, length: int) -> None:
        self.ensure_row(length - 1)


def earliest_cycle(ddg: DepGraph, state: ScheduleState, idx: int) -> Optional[int]:
    """Earliest cycle ``idx`` may issue, or None if a predecessor is
    unscheduled."""
    earliest = 0
    for pred, lat, _kind in ddg.preds_of(idx):
        if pred not in state.placed_cycle:
            return None
        earliest = max(earliest, state.placed_cycle[pred] + lat)
    return earliest


def list_schedule(ddg: DepGraph, machine: MachineConfig,
                  node_indices: list[int],
                  state: Optional[ScheduleState] = None,
                  start_cycle: int = 0,
                  stats=None) -> ScheduleState:
    """Schedule exactly ``node_indices`` (a subset of the DDG) into ``state``.

    Dependence predecessors outside the subset must already be placed in
    ``state``.  Used for a whole basic block, and by the global scheduler for
    a block's native instructions.
    """
    if state is None:
        state = ScheduleState(machine)
    if stats is not None:
        stats.list_instrs += len(node_indices)
    heights = ddg.critical_path_heights()
    remaining = set(node_indices)
    cycle = start_cycle
    guard = 0
    while remaining:
        guard += 1
        if guard > 100_000:
            raise RuntimeError("list scheduler did not converge")
        ready = []
        for idx in remaining:
            e = earliest_cycle(ddg, state, idx)
            if e is not None and e <= cycle:
                ready.append(idx)
        ready.sort(key=lambda i: (-heights[i], i))
        placed_any = False
        for idx in ready:
            instr = ddg.nodes[idx].instr
            slot = state.free_slot(cycle, instr)
            if slot is not None:
                state.place(idx, instr, cycle, slot)
                remaining.discard(idx)
                placed_any = True
        if remaining and not placed_any:
            cycle += 1
        elif remaining:
            # keep trying the same cycle only if slots may remain
            if all(x is not None for x in state.rows[cycle]):
                cycle += 1
    return state
