"""Hardware-support models for boosting (Section 4).

Each model describes how much speculation hardware exists, which in turn
constrains the instruction scheduler:

* ``NO_BOOST`` — the base superscalar: no shadow structures at all.  Global
  scheduling may only perform *safe and legal* speculative movements.
* ``SQUASHING`` — no shadow storage; the pipeline can squash boosted
  instructions issued **with the branch or in its delay cycle** (Option 3).
  Boosting is limited to one level and to those two cycles.
* ``BOOST1`` — one shadow register file and one shadow store buffer, single
  level of boosting (no counters; the commit gate is just AND(valid,
  commit)).
* ``MINBOOST3`` — a single shadow register file with 2-bit counters
  supporting boosting across three branches (Option 2), and **no** shadow
  store buffer (Option 1).  The single file means two outstanding boosted
  values of the same register cannot coexist: the scheduler must respect an
  output-like dependence (Figure 6c).
* ``BOOST7`` — full shadow state for seven levels: per-level shadow register
  files and a shadow store buffer; unconstrained boosting up to level 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class BoostModel:
    name: str
    #: maximum boosting level (0 = no boosting at all)
    max_level: int
    #: can stores be boosted (is there a shadow store buffer)?
    boost_stores: bool
    #: distinct shadow storage per level (multiple shadow register files)?
    multi_shadow_files: bool
    #: squashing-pipeline only: boosted instructions may sit only in the
    #: branch-issue cycle or the delay cycle of their dependent branch
    squash_only: bool = False

    @property
    def supports_boosting(self) -> bool:
        return self.max_level > 0

    def can_boost(self, instr: Instruction, level: int) -> bool:
        """Whether this hardware can hold the speculative effects of
        ``instr`` boosted ``level`` branches up."""
        if level <= 0 or level > self.max_level:
            return False
        if instr.op.is_branch:
            return False  # branches are never boosted by our scheduler
        if instr.op.is_store and not self.boost_stores:
            return False
        if not instr.side_effect_free and not instr.op.is_store:
            return False  # print/halt are never speculated
        return True


NO_BOOST = BoostModel("NoBoost", max_level=0, boost_stores=False,
                      multi_shadow_files=False)
SQUASHING = BoostModel("Squashing", max_level=1, boost_stores=True,
                       multi_shadow_files=False, squash_only=True)
BOOST1 = BoostModel("Boost1", max_level=1, boost_stores=True,
                    multi_shadow_files=False)
MINBOOST3 = BoostModel("MinBoost3", max_level=3, boost_stores=False,
                       multi_shadow_files=False)
BOOST7 = BoostModel("Boost7", max_level=7, boost_stores=True,
                    multi_shadow_files=True)

ALL_MODELS = (NO_BOOST, SQUASHING, BOOST1, MINBOOST3, BOOST7)
BY_NAME = {m.name: m for m in ALL_MODELS}
