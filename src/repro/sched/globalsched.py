"""The trace-based global scheduler (Section 3.2, Figure 4).

Per procedure: regions innermost-first, traces grown along predicted edges,
and per trace:

1. build the trace dependence graph (no control edges except branch order);
2. for each block in trace order: list-schedule its *native* instructions
   (the block's cycle count is then frozen — a global motion never lengthens
   a block), place the terminator under the delay-slot contract, and then
   fill the remaining empty slots with ready instructions from later trace
   blocks, consulting the :class:`~repro.sched.motion.MotionEngine` for
   boosting/duplication bookkeeping;
3. record, per crossed conditional branch, the boosted instructions pending
   at its commit, from which the recovery code (Section 2.3) is generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.liveness import instr_defs, instr_uses
from repro.analysis.regions import RegionTree
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.obs.stats import SchedStats, record_schedule_occupancy
from repro.program.cfg import CFG
from repro.program.procedure import Procedure, Program
from repro.sched.bbsched import (block_length, schedule_block_local,
                                 terminator_min_cycle)
from repro.sched.boostmodel import BoostModel, NO_BOOST
from repro.sched.ddg import DepGraph
from repro.sched.machine import MachineConfig
from repro.sched.motion import MotionEngine
from repro.sched.schedprog import (
    RecoveryBlock, ScheduledBlock, ScheduledProcedure, ScheduledProgram,
)
from repro.sched.traces import Trace, select_traces


@dataclass
class _TraceScheduler:
    """Schedules one trace; accumulates blocks and recovery bookkeeping."""

    proc: Procedure
    cfg: CFG
    trace: Trace
    machine: MachineConfig
    model: BoostModel
    engine: MotionEngine
    pending: dict[int, list[tuple[Instruction, int]]]
    resume_label: dict[int, str]
    stats: "GlobalScheduleStats"

    def run(self) -> list[ScheduledBlock]:
        labels = self.trace.labels
        blocks = [self.proc.block(lab) for lab in labels]
        instrs: list[Instruction] = []
        homes: list[int] = []
        term_node: dict[int, int] = {}  # trace position -> node idx
        for pos, block in enumerate(blocks):
            for instr in block.body:
                instrs.append(instr)
                homes.append(pos)
            if block.terminator is not None:
                term_node[pos] = len(instrs)
                instrs.append(block.terminator)
                homes.append(pos)
        self.ddg = DepGraph(instrs, homes)
        self.homes = homes
        self.heights = self.ddg.critical_path_heights()
        self.abs_placed: dict[int, int] = {}
        self.placed_boost: dict[int, int] = {}
        # boosted-write occupancy: (reg index, start pos, commit pos)
        self.outstanding: list[tuple[int, int, int]] = []
        # boosted-store occupancy: (start pos, commit pos)
        self.outstanding_stores: list[tuple[int, int]] = []

        scheduled_blocks: list[ScheduledBlock] = []
        offset = 0
        for pos, block in enumerate(blocks):
            sblock, length = self._schedule_block(pos, block,
                                                  term_node.get(pos), offset)
            scheduled_blocks.append(sblock)
            offset += length
        return scheduled_blocks

    # ------------------------------------------------------------ per block
    def _schedule_block(self, pos: int, block, term_idx: Optional[int],
                        offset: int) -> tuple[ScheduledBlock, int]:
        machine = self.machine
        width = machine.issue_width
        rows: list[list[Optional[Instruction]]] = []

        natives = [i for i, h in enumerate(self.homes)
                   if h == pos and i != term_idx and i not in self.abs_placed]
        # Boosted compensation copies occupy the shadow file while resident.
        for idx in natives:
            instr = self.ddg.nodes[idx].instr
            if instr.is_boosted and instr.dst is not None:
                self.outstanding.append((instr.dst.index, pos, pos))

        def ensure_row(c: int) -> None:
            while len(rows) <= c:
                rows.append([None] * width)

        def ready_at(idx: int) -> Optional[int]:
            worst = offset
            for p, lat, _ in self.ddg.preds_of(idx):
                if p not in self.abs_placed:
                    return None
                worst = max(worst, self.abs_placed[p] + lat)
            return worst

        # --- natives ------------------------------------------------------
        remaining = set(natives)
        cycle = 0
        guard = 0
        while remaining:
            guard += 1
            if guard > 100_000:
                raise RuntimeError("native scheduling did not converge")
            ensure_row(cycle)
            ready = []
            for idx in remaining:
                r = ready_at(idx)
                if r is not None and r <= offset + cycle:
                    ready.append(idx)
            ready.sort(key=lambda i: (-self.heights[i], i))
            placed_any = False
            for idx in ready:
                instr = self.ddg.nodes[idx].instr
                for slot in machine.slots_for(instr):
                    if rows[cycle][slot] is None:
                        rows[cycle][slot] = instr
                        self.abs_placed[idx] = offset + cycle
                        remaining.discard(idx)
                        placed_any = True
                        break
            if remaining and (not placed_any
                              or all(x is not None for x in rows[cycle])):
                cycle += 1

        body_len = _used_cycles(rows)
        del rows[body_len:]

        # --- terminator -----------------------------------------------------
        term_cycle: Optional[int] = None
        term = None
        if term_idx is not None:
            term = self.ddg.nodes[term_idx].instr
            ready = ready_at(term_idx)
            if ready is None:
                raise RuntimeError("terminator predecessors unscheduled")
            k = max(ready - offset, terminator_min_cycle(term, body_len), 0)
            while True:
                ensure_row(k)
                placed = False
                for slot in machine.slots_for(term):
                    if rows[k][slot] is None:
                        rows[k][slot] = term
                        self.abs_placed[term_idx] = offset + k
                        placed = True
                        break
                if placed:
                    break
                if k == body_len - 1 and term.op is not Opcode.HALT:
                    slot = self._displace_into_delay(rows, k, term_idx)
                    if slot is not None:
                        rows[k][slot] = term
                        self.abs_placed[term_idx] = offset + k
                        placed = True
                        break
                k += 1
            term_cycle = k

        length = block_length(term, term_cycle, _used_cycles(rows))
        while len(rows) < length:
            rows.append([None] * width)
        del rows[length:]

        # --- fill holes with upward code motion ----------------------------
        if pos < len(self.trace.labels) - 1:
            self._fill_holes(pos, rows, term_cycle, offset)

        return ScheduledBlock(block.label, rows, term_cycle), length

    def _displace_into_delay(self, rows, k: int, term_idx: int):
        """Classic delay-slot fill: push one non-branch-feeding instruction
        from row ``k`` into the empty delay row, freeing a slot for the
        branch."""
        while len(rows) <= k + 1:
            rows.append([None] * self.machine.issue_width)
        if any(x is not None for x in rows[k + 1]):
            return None
        term = self.ddg.nodes[term_idx].instr
        by_instr = {id(self.ddg.nodes[i].instr): i for i in self.abs_placed}
        for slot in self.machine.slots_for(term):
            victim = rows[k][slot]
            if victim is None:
                return slot
            v_idx = by_instr.get(id(victim))
            if v_idx is None:
                continue
            if any(succ == term_idx for succ, _, _
                   in self.ddg.succs_of(v_idx)):
                continue
            # The victim slides one cycle down, so every already-placed
            # dependence successor must still issue at or after its new
            # position.  A WAR successor co-issued in row ``k`` (legal:
            # reads precede writes within a cycle) would otherwise end up
            # writing a register one cycle *before* the victim reads it.
            new_pos = self.abs_placed[v_idx] + 1
            if any(self.abs_placed.get(s) is not None
                   and self.abs_placed[s] < new_pos + lat
                   for s, lat, _ in self.ddg.succs_of(v_idx)):
                continue
            rows[k + 1][slot] = victim
            rows[k][slot] = None
            self.abs_placed[v_idx] += 1
            return slot
        return None

    # ------------------------------------------------------------ candidates
    def _fill_holes(self, pos: int, rows, term_cycle: Optional[int],
                    offset: int) -> None:
        machine = self.machine
        for c, row in enumerate(rows):
            for slot in range(machine.issue_width):
                if row[slot] is not None:
                    continue
                idx = self._pick_candidate(pos, c, slot, term_cycle, offset)
                if idx is None:
                    continue
                row[slot] = self.ddg.nodes[idx].instr
                self.abs_placed[idx] = offset + c

    def _pick_candidate(self, pos: int, cycle: int, slot: int,
                        term_cycle: Optional[int],
                        offset: int) -> Optional[int]:
        in_squash_region = term_cycle is not None and cycle >= term_cycle
        best: Optional[tuple] = None
        best_idx = None
        best_plan = None
        for idx, node in enumerate(self.ddg.nodes):
            if idx in self.abs_placed:
                continue
            home = self.homes[idx]
            if home <= pos:
                continue
            instr = node.instr
            if instr.is_terminator or instr.op is Opcode.NOP:
                continue
            if instr.is_boosted:
                continue  # compensation copies stay home
            if slot not in self.machine.slots_for(instr):
                continue
            ready = offset
            blocked = False
            for p, lat, _ in self.ddg.preds_of(idx):
                if p not in self.abs_placed:
                    blocked = True
                    break
                ready = max(ready, self.abs_placed[p] + lat)
            if blocked or ready > offset + cycle:
                continue
            key = (-self.heights[idx], idx)
            if best is not None and key >= best:
                continue
            has_spec_producer = any(
                self.placed_boost.get(p, 0) > 0 and self.homes[p] > pos
                for p in self.ddg.raw_preds_of(idx)
            )
            self.stats.motions_attempted += 1
            plan = self.engine.plan(instr, home, pos, has_spec_producer,
                                    in_squash_region)
            if not plan.ok:
                self.stats.note_rejected(plan.code or "other")
                continue
            if plan.boost > 0 and not self._shadow_fits(instr, pos, home):
                self.stats.note_rejected("shadow-conflict")
                continue
            if plan.boost == 0 and not self._sequential_write_fits(instr, pos):
                self.stats.note_rejected("waw-order")
                continue
            if plan.boost == 0 and not self._writeback_fits(instr, pos):
                self.stats.note_rejected("writeback-order")
                continue
            best, best_idx, best_plan = key, idx, plan
        if best_idx is None:
            return None
        self._apply_plan(best_idx, pos, best_plan)
        return best_idx

    def _sequential_write_fits(self, instr: Instruction, pos: int) -> bool:
        """A non-boosted write placed at ``pos`` issues before any commit at
        the end of block ``pos`` or later.  An outstanding boosted write to
        the same register (or, for stores, any outstanding boosted store)
        with a commit point >= ``pos`` would architecturally land *after*
        this write, inverting the WAW order — reject the motion."""
        if instr.dst is not None:
            r = instr.dst.index
            for reg, _start, commit in self.outstanding:
                if reg == r and commit >= pos:
                    return False
        if instr.op.is_store:
            for _start, commit in self.outstanding_stores:
                if commit >= pos:
                    return False
        return True

    def _writeback_fits(self, instr: Instruction, pos: int) -> bool:
        """A sequential cross-block motion is written back into the placement
        block's *body*, i.e. textually before its terminator.  If that
        terminator *reads* a register the moved instruction writes, the
        schedule is fine (the branch co-issues with the write and reads the
        old value, like a delay slot) but the IR cannot express that order:
        liveness would see the register killed before the branch's read and
        report it dead upstream, licensing later illegal speculation.  The
        duplication path already refuses this shape (``_plan_dup``); refuse
        it here too."""
        term = self.proc.block(self.trace.labels[pos]).terminator
        if term is None:
            return True
        return not (set(instr_defs(instr)) & set(instr_uses(term)))

    def _shadow_fits(self, instr: Instruction, place_pos: int,
                     home_pos: int) -> bool:
        """Single shadow register file: one outstanding level per register
        (Figure 6c's output-like dependence)."""
        if self.model.multi_shadow_files or instr.dst is None:
            return True
        commit = home_pos - 1
        for reg, start, other_commit in self.outstanding:
            if reg != instr.dst.index:
                continue
            if start <= commit and place_pos <= other_commit \
                    and other_commit != commit:
                return False
        return True

    def _apply_plan(self, idx: int, pos: int, plan) -> None:
        instr = self.ddg.nodes[idx].instr
        labels = self.trace.labels
        self.stats.motions_accepted += 1
        if plan.boost == 0 and self.homes[idx] != pos:
            # A sequential (non-boosted) motion architecturally executes at
            # its placement block, on every path through it.  Write it back
            # into the IR so liveness stays truthful for later motions: the
            # classic failure is hoisting a kill out of its home block and
            # then letting a later trace speculate a write above a branch
            # because the destination still *looks* dead on that path.
            # Boosted motions stay home — their write commits at the branch,
            # and off-trace paths never see it, which is exactly what the
            # home placement models.
            home_block = self.proc.block(labels[self.homes[idx]])
            home_block.body[:] = [x for x in home_block.body if x is not instr]
            self.proc.block(labels[pos]).body.append(instr)
            self.engine.invalidate_liveness()
            self.engine.invalidate_between()
        if plan.boost > 0:
            instr.boost = plan.boost
            self.placed_boost[idx] = plan.boost
            self.stats.boosted += 1
            self.stats.note_boost_level(plan.boost)
            if instr.dst is not None:
                self.outstanding.append(
                    (instr.dst.index, pos, self.homes[idx] - 1))
            if instr.op.is_store:
                self.outstanding_stores.append((pos, self.homes[idx] - 1))
            for k, m in enumerate(plan.cond_positions, start=1):
                branch = self.proc.block(labels[m]).terminator
                self.pending.setdefault(branch.uid, []).append(
                    (instr, plan.boost - k))
                self.resume_label[branch.uid] = labels[m + 1]
        elif plan.cond_positions:
            self.stats.safe_speculative += 1
        for copy, dp in self.engine.apply_dups(instr, plan):
            self.stats.duplicates += 1
            self.stats.note_dup(
                "split" if dp.kind == "split"
                else ("boosted" if dp.boost > 0 else "plain"))
            if dp.boost > 0:
                self.stats.boosted += 1
                self.stats.note_boost_level(dp.boost)
                pred_term = self.proc.block(dp.pred_label).terminator
                self.pending.setdefault(pred_term.uid, []).append((copy, 0))
                self.resume_label[pred_term.uid] = dp.join_label


def _used_cycles(rows) -> int:
    for c in range(len(rows) - 1, -1, -1):
        if any(x is not None for x in rows[c]):
            return c + 1
    return 0


#: Scheduler counters now live in :mod:`repro.obs`; the historical name is
#: kept as an alias so existing callers (pipeline, CLI, tests) keep working.
GlobalScheduleStats = SchedStats


def schedule_procedure_global(
    proc: Procedure,
    machine: MachineConfig,
    model: BoostModel,
    stats: Optional[GlobalScheduleStats] = None,
) -> ScheduledProcedure:
    """Globally schedule one procedure (mutates it: boost labels and
    compensation copies are written back into the IR)."""
    stats = stats if stats is not None else GlobalScheduleStats()
    cfg = CFG(proc)
    tree = RegionTree(cfg)
    traces = select_traces(proc, cfg, tree)
    scheduled_labels: set[str] = set()
    pending: dict[int, list[tuple[Instruction, int]]] = {}
    resume_label: dict[int, str] = {}
    comp_defs: dict[str, set] = {}
    shadow_defs: dict[str, set] = {}
    by_label: dict[str, ScheduledBlock] = {}

    for trace in traces:
        stats.note_trace(len(trace.labels))
        engine = MotionEngine(proc, cfg, trace, model, scheduled_labels,
                              resume_label, comp_defs, shadow_defs)
        ts = _TraceScheduler(proc, cfg, trace, machine, model, engine,
                             pending, resume_label, stats)
        for sblock in ts.run():
            by_label[sblock.label] = sblock
        scheduled_labels.update(trace.labels)
        stats.split_blocks += len(engine.new_blocks)

    # Compensation blocks created by edge splitting are scheduled locally.
    for block in proc.blocks:
        if block.label not in by_label:
            by_label[block.label] = schedule_block_local(block, machine,
                                                         stats=stats)

    sp = ScheduledProcedure(proc.name)
    for block in proc.blocks:  # original layout order keeps fall-throughs
        sp.add_block(by_label[block.label])

    for uid, entries in pending.items():
        if not any(orig.op.can_except for orig, _ in entries):
            continue
        copies = [orig.copy(boost=remaining) for orig, remaining in entries]
        stats.recovery_blocks += 1
        stats.recovery_instrs += len(copies)
        sp.recovery[uid] = RecoveryBlock(
            branch_uid=uid, instructions=copies,
            resume_label=resume_label[uid])
    return sp


def schedule_program_global(
    program: Program,
    machine: MachineConfig,
    model: BoostModel = NO_BOOST,
) -> tuple[ScheduledProgram, GlobalScheduleStats]:
    """Globally schedule a whole program under a boosting model."""
    stats = GlobalScheduleStats()
    sched = ScheduledProgram(program, machine, model)
    for proc in program.procedures.values():
        sched.add(schedule_procedure_global(proc, machine, model, stats))
    record_schedule_occupancy(sched, stats)
    return sched, stats
