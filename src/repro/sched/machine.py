"""Machine descriptions for the schedulers and timing simulators.

The paper's base superscalar (Section 4.3.1) is a 2-issue machine with a
*distributed* (non-symmetric) functional-unit mix:

* **side A** (slot 0): integer ALU, branch unit, shifter, integer
  multiply/divide unit, floating point;
* **side B** (slot 1): integer ALU and the single memory port.

An instruction fetched for one side must execute on that side — there is no
swap logic, so the scheduler alone decides slot assignment.  Two integer ALU
operations can issue together, but (for example) a branch and a shift
cannot.  The scalar machine is the same pipeline, one slot wide, with every
unit on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.opcodes import FU, Opcode


@dataclass(frozen=True)
class MachineConfig:
    """Issue width and which FU classes each slot can execute."""

    name: str
    slot_fus: tuple[frozenset[FU], ...]
    #: exception-recovery invocation overhead, cycles (Section 2.3: ~10)
    recovery_overhead: int = 10

    @property
    def issue_width(self) -> int:
        return len(self.slot_fus)

    def slots_for(self, instr: Instruction) -> list[int]:
        """Slot indices that can execute ``instr`` (NOP fits anywhere)."""
        fu = instr.op.fu
        if fu is FU.NONE:
            return list(range(self.issue_width))
        return [i for i, fus in enumerate(self.slot_fus) if fu in fus]

    def can_execute(self, instr: Instruction) -> bool:
        return bool(self.slots_for(instr))


_SIDE_A = frozenset({FU.ALU, FU.BRANCH, FU.SHIFT, FU.MULDIV})
_SIDE_B = frozenset({FU.ALU, FU.MEM})

#: The paper's 2-issue base superscalar.
SUPERSCALAR = MachineConfig("superscalar-2", (_SIDE_A, _SIDE_B))

#: The scalar MIPS-R2000-like baseline: one slot, all units.
SCALAR = MachineConfig("scalar-r2000", (_SIDE_A | _SIDE_B,))


def latency(instr: Instruction) -> int:
    """Result latency in cycles (1 = usable next cycle)."""
    return instr.op.latency


#: HALT is modelled as taking the branch path.
assert Opcode.HALT.fu is FU.BRANCH
