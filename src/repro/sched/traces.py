"""Trace selection (Section 3.2.1).

Scheduling works region by region, innermost loops first.  Within a region,
the next unscheduled block (in topological order) seeds a trace, which grows
along the statically-predicted successor edge until it leaves the region,
reaches an already-selected block, closes a cycle, or hits a block whose
terminator ends scheduling lookahead (a call, a return, an indirect jump, or
``halt``).  Traces follow the *predicted* directions of conditional
branches — the direction along which boosted instructions commit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.regions import Region, RegionTree
from repro.isa.opcodes import Opcode
from repro.program.block import BasicBlock
from repro.program.cfg import CFG
from repro.program.procedure import Procedure


@dataclass
class Trace:
    labels: list[str]
    region: Region

    def __len__(self) -> int:
        return len(self.labels)

    def position(self, label: str) -> int:
        return self.labels.index(label)

    def __repr__(self) -> str:
        return f"<Trace {' -> '.join(self.labels)}>"


def _ends_lookahead(block: BasicBlock) -> bool:
    term = block.terminator
    if term is None:
        return False
    return (term.op.is_call or term.op.is_indirect
            or term.op is Opcode.HALT)


def grow_trace(proc: Procedure, cfg: CFG, region: Region, seed: str,
               taken: set[str]) -> Trace:
    """Grow one trace from ``seed`` along predicted edges."""
    labels = [seed]
    taken.add(seed)
    cur = seed
    while True:
        block = proc.block(cur)
        if _ends_lookahead(block):
            break
        nxt = cfg.predicted_succ(cur)
        if nxt is None:
            break
        if nxt not in region.blocks:
            break
        if nxt in labels:
            break  # loop edge
        if nxt in taken:
            break  # already part of an earlier trace
        labels.append(nxt)
        taken.add(nxt)
        cur = nxt
    return Trace(labels=labels, region=region)


def select_traces(proc: Procedure, cfg: CFG,
                  tree: RegionTree | None = None) -> list[Trace]:
    """All traces of a procedure, in scheduling order (inner regions
    first)."""
    if tree is None:
        tree = RegionTree(cfg)
    taken: set[str] = set()
    traces: list[Trace] = []
    rpo = cfg.rpo()
    rpo_set = set(rpo)
    for region in tree.schedule_order():
        order = [lab for lab in rpo if lab in region.blocks]
        for seed in order:
            if seed in taken:
                continue
            traces.append(grow_trace(proc, cfg, region, seed, taken))
    # Unreachable blocks (not in RPO) still need schedules for completeness.
    for block in proc.blocks:
        if block.label not in rpo_set and block.label not in taken:
            traces.append(grow_trace(proc, cfg, tree.root, block.label, taken))
    return traces
