"""Scheduling: machine models, boosting models, local and global schedulers."""

from repro.sched.bbsched import (
    schedule_block_local, schedule_procedure_bb, schedule_program_bb,
)
from repro.sched.boostmodel import (
    ALL_MODELS, BOOST1, BOOST7, BY_NAME, BoostModel, MINBOOST3, NO_BOOST,
    SQUASHING,
)
from repro.sched.ddg import DepGraph, DepNode
from repro.obs.stats import SchedStats
from repro.sched.globalsched import (
    GlobalScheduleStats, schedule_procedure_global, schedule_program_global,
)
from repro.sched.listsched import ScheduleState, earliest_cycle, list_schedule
from repro.sched.machine import MachineConfig, SCALAR, SUPERSCALAR, latency
from repro.sched.motion import DupPlan, MotionEngine, MotionPlan
from repro.sched.schedprog import (
    RecoveryBlock, ScheduledBlock, ScheduledProcedure, ScheduledProgram,
)
from repro.sched.traces import Trace, grow_trace, select_traces

__all__ = [
    "ALL_MODELS", "BOOST1", "BOOST7", "BY_NAME", "BoostModel", "DepGraph",
    "DepNode", "DupPlan", "GlobalScheduleStats", "MINBOOST3", "MachineConfig",
    "MotionEngine", "MotionPlan", "NO_BOOST", "RecoveryBlock", "SCALAR",
    "SQUASHING", "SUPERSCALAR", "SchedStats", "ScheduleState",
    "ScheduledBlock",
    "ScheduledProcedure", "ScheduledProgram", "Trace", "earliest_cycle",
    "grow_trace", "latency", "list_schedule", "schedule_block_local",
    "schedule_procedure_bb", "schedule_procedure_global",
    "schedule_program_bb", "schedule_program_global", "select_traces",
]
