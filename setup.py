"""Setuptools shim.

The canonical metadata lives in pyproject.toml.  This file exists so the
package can be installed in environments without the `wheel` package (and
without network access) via `python setup.py develop` or
`pip install -e . --no-build-isolation`.
"""

from setuptools import setup

setup()
